//! The lint rules. Each rule walks the token stream (never raw text — see
//! [`crate::lexer`]) and pushes [`Diagnostic`]s. Rules stay deliberately
//! lexical: they encode *repo invariants*, not general Rust semantics, so a
//! heuristic that is precise on this codebase beats a type-aware analysis
//! we can't build without external dependencies.

use crate::diag::{Diagnostic, RuleId};
use crate::lexer::{Token, TokenKind};

/// Token-index ranges covered by `#[cfg(test)]` items (usually
/// `mod tests { … }`). Panic-policy, float-eq, and unit-cast skip these:
/// test code may unwrap and compare freely.
pub fn test_spans(code: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(code[i].is_punct("#") && is_cfg_test_attr(code, i)) {
            i += 1;
            continue;
        }
        let start = i;
        // `#![cfg(test)]` (inner attribute): the whole file is test code.
        if code.get(i + 1).is_some_and(|t| t.is_punct("!")) {
            spans.push((start, code.len().saturating_sub(1)));
            return spans;
        }
        let mut j = skip_attr(code, i);
        // Any further attributes on the same item (`#[test]`, docs, …).
        while code.get(j).is_some_and(|t| t.is_punct("#"))
            && code.get(j + 1).is_some_and(|t| t.is_punct("["))
        {
            j = skip_attr(code, j);
        }
        // The item ends at its closing brace, or at `;` for braceless items.
        let (mut brace, mut paren, mut bracket) = (0i32, 0i32, 0i32);
        let mut end = code.len().saturating_sub(1);
        while j < code.len() {
            match code[j].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end = j;
                        break;
                    }
                }
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if brace == 0 && paren == 0 && bracket == 0 => {
                    end = j;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        spans.push((start, end));
        i = end + 1;
    }
    spans
}

/// Is `code[i..]` the start of `#[cfg(test)]` / `#![cfg(test)]`?
fn is_cfg_test_attr(code: &[Token], i: usize) -> bool {
    let mut j = i + 1;
    if code.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    code.get(j).is_some_and(|t| t.is_punct("["))
        && code.get(j + 1).is_some_and(|t| t.is_ident("cfg"))
        && code.get(j + 2).is_some_and(|t| t.is_punct("("))
        && code.get(j + 3).is_some_and(|t| t.is_ident("test"))
        && code.get(j + 4).is_some_and(|t| t.is_punct(")"))
        && code.get(j + 5).is_some_and(|t| t.is_punct("]"))
}

/// Index just past an attribute starting at `code[i]` (`#` or `#!`).
fn skip_attr(code: &[Token], i: usize) -> usize {
    let mut j = i + 1;
    if code.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !code.get(j).is_some_and(|t| t.is_punct("[")) {
        return j;
    }
    let mut depth = 0i32;
    while j < code.len() {
        match code[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

fn in_spans(spans: &[(usize, usize)], i: usize) -> bool {
    spans.iter().any(|&(a, b)| i >= a && i <= b)
}

/// SL001 — determinism: wall clocks, unseeded RNG, and hash-order
/// iteration are forbidden. The emulator's results are compared
/// bit-for-bit across runs and worker counts; any of these would make
/// golden digests machine- or run-dependent. Applies to test code too
/// (the golden/determinism suites are exactly where this matters most).
pub fn determinism(path: &str, code: &[Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "Instant"
                if code.get(i + 1).is_some_and(|t| t.is_punct("::"))
                    && code.get(i + 2).is_some_and(|t| t.is_ident("now")) =>
            {
                "Instant::now() reads the wall clock; simulated code must use the \
                 event-queue clock (simcore::units::Time)"
            }
            "SystemTime" => {
                "SystemTime reads the wall clock; simulated code must use the \
                 event-queue clock (simcore::units::Time)"
            }
            "thread_rng" | "ThreadRng" => {
                "thread_rng is unseeded; use simcore::rng::Xoshiro256 with an explicit seed"
            }
            "HashMap" | "HashSet" => {
                "HashMap/HashSet iterate in hash order, which varies across runs; \
                 use BTreeMap/BTreeSet for deterministic iteration"
            }
            _ => continue,
        };
        out.push(Diagnostic::new(RuleId::Determinism, path, t.line, t.col, msg.to_string()));
    }
}

/// SL002 — panic policy: library crates must not `.unwrap()` bare; every
/// `.expect("…")` must carry a non-empty message documenting the invariant
/// that makes the panic unreachable (the PR 3 convention).
pub fn panic_policy(path: &str, code: &[Token], spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if !t.is_punct(".") || in_spans(spans, i) {
            continue;
        }
        if code.get(i + 1).is_some_and(|t| t.is_ident("unwrap"))
            && code.get(i + 2).is_some_and(|t| t.is_punct("("))
            && code.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            let at = &code[i + 1];
            out.push(Diagnostic::new(
                RuleId::PanicPolicy,
                path,
                at.line,
                at.col,
                "bare .unwrap() in a library crate; use .expect(\"…\") with a message \
                 stating why the value is always present"
                    .to_string(),
            ));
        }
        if code.get(i + 1).is_some_and(|t| t.is_ident("expect"))
            && code.get(i + 2).is_some_and(|t| t.is_punct("("))
            && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Str && t.str_is_empty())
            && code.get(i + 4).is_some_and(|t| t.is_punct(")"))
        {
            let at = &code[i + 1];
            out.push(Diagnostic::new(
                RuleId::PanicPolicy,
                path,
                at.line,
                at.col,
                ".expect(\"\") with an empty message documents nothing; state the \
                 invariant that makes this infallible"
                    .to_string(),
            ));
        }
    }
}

/// Unit accessors known to return `f64`: seeing one feed `==`/`!=` is the
/// float-comparison the rule exists to catch.
const FLOAT_METHODS: &[&str] =
    &["as_secs_f64", "as_millis_f64", "mbps", "bps", "bytes_per_sec", "pkts_per_sec"];

/// SL003 — float-eq: `==`/`!=` on float expressions. Exact float equality
/// is almost always a latent bug in rate/delay math (two mathematically
/// equal quantities computed along different paths need not be bit-equal);
/// compare against a tolerance or restructure on integer nanoseconds.
pub fn float_eq(path: &str, code: &[Token], spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    let is_floaty = |t: &Token| {
        t.kind == TokenKind::Float
            || (t.kind == TokenKind::Ident && (t.text == "f64" || t.text.ends_with("_f64")))
    };
    for (i, t) in code.iter().enumerate() {
        if !(t.is_punct("==") || t.is_punct("!=")) || in_spans(spans, i) {
            continue;
        }
        let mut floaty = code.get(i + 1).is_some_and(&is_floaty)
            || (i > 0 && is_floaty(&code[i - 1]));
        // `x.mbps() == y`: scan back over the call's parens to the method.
        if !floaty && i > 0 && code[i - 1].is_punct(")") {
            let mut depth = 0i32;
            for j in (0..i).rev() {
                match code[j].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            floaty = j > 0
                                && code[j - 1].kind == TokenKind::Ident
                                && (FLOAT_METHODS.contains(&code[j - 1].text.as_str())
                                    || code[j - 1].text.ends_with("_f64"));
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        if floaty {
            out.push(Diagnostic::new(
                RuleId::FloatEq,
                path,
                t.line,
                t.col,
                format!(
                    "`{}` on a float expression; compare with a tolerance or use \
                     integer nanoseconds/bytes",
                    t.text
                ),
            ));
        }
    }
}

/// SL004 — unit-cast: raw `as f64` / `as u64` in `netsim`. Time and byte
/// quantities must go through the named converters in `simcore::units`
/// (`bytes_as_f64`, `f64_as_bytes`, `count_as_u64`, `Dur::from_secs_f64`)
/// so every conversion names its unit and rounding policy.
pub fn unit_cast(path: &str, code: &[Token], spans: &[(usize, usize)], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if !t.is_ident("as") || in_spans(spans, i) {
            continue;
        }
        let Some(target) = code.get(i + 1) else { continue };
        if target.is_ident("f64") || target.is_ident("u64") {
            out.push(Diagnostic::new(
                RuleId::UnitCast,
                path,
                t.line,
                t.col,
                format!(
                    "raw `as {}` on a time/byte quantity; use a named converter from \
                     simcore::units (bytes_as_f64, f64_as_bytes, count_as_u64, \
                     Dur::from_secs_f64) so the unit and rounding policy are explicit",
                    target.text
                ),
            ));
        }
    }
}

/// SL005 — trace-exhaustiveness: a `match` over `trace::Event` must list
/// every variant. A `_ =>` (or catch-all binding) arm means a future
/// `Event` variant silently falls through a sink or the auditor, and the
/// golden digests drift without any compile- or lint-time signal.
pub fn trace_exhaustiveness(path: &str, code: &[Token], out: &mut Vec<Diagnostic>) {
    let event_params = event_param_names(code);
    for i in 0..code.len() {
        if code[i].is_ident("match") {
            check_match(path, code, i, &event_params, out);
        }
    }
}

/// Names of fn parameters whose declared type mentions `Event` (`ev:
/// &Event`, `ev: &&trace::Event`, …), collected file-wide. A `match` whose
/// scrutinee is one of these names (possibly behind `&`/`*`/parens) is an
/// event match even when no arm spells `Event::` — the case a match of
/// nothing but catch-alls over a reference would otherwise slip through.
fn event_param_names(code: &[Token]) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // `fn name …(params)` — scan to the param list's `(`.
        let mut j = i + 1;
        while j < code.len()
            && !code[j].is_punct("(")
            && !code[j].is_punct("{")
            && !code[j].is_punct(";")
        {
            j += 1;
        }
        if j >= code.len() || !code[j].is_punct("(") {
            i = j.max(i + 1);
            continue;
        }
        let open = j;
        let mut depth = 0i32;
        let mut close = None;
        while j < code.len() {
            if code[j].is_punct("(") {
                depth += 1;
            } else if code[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            j += 1;
        }
        let Some(close) = close else { break };
        // Each `name: Type` at top level: does Type mention `Event`?
        let mut k = open + 1;
        let (mut p, mut br) = (0i32, 0i32);
        while k < close {
            let t = &code[k];
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => br += 1,
                "]" => br -= 1,
                _ => {}
            }
            if p == 0
                && br == 0
                && t.is_punct(":")
                && k > open + 1
                && code[k - 1].kind == TokenKind::Ident
            {
                let (mut p2, mut br2, mut ang) = (0i32, 0i32, 0i32);
                let mut has_event = false;
                let mut m = k + 1;
                while m < close {
                    let u = &code[m];
                    match u.text.as_str() {
                        "(" => p2 += 1,
                        ")" => p2 -= 1,
                        "[" => br2 += 1,
                        "]" => br2 -= 1,
                        "<" => ang += 1,
                        ">" => ang -= 1,
                        "<<" => ang += 2,
                        ">>" => ang -= 2,
                        "," if p2 == 0 && br2 == 0 && ang <= 0 => break,
                        _ => {}
                    }
                    if u.is_ident("Event") {
                        has_event = true;
                    }
                    m += 1;
                }
                if has_event {
                    out.insert(code[k - 1].text.clone());
                }
                k = m;
                continue;
            }
            k += 1;
        }
        i = close + 1;
    }
    out
}

/// Index of the `}` matching the `{` at `code[open]`.
fn matching_brace(code: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
    }
    code.len().saturating_sub(1)
}

fn check_match(
    path: &str,
    code: &[Token],
    kw: usize,
    event_params: &std::collections::BTreeSet<String>,
    out: &mut Vec<Diagnostic>,
) {
    // Scrutinee: everything up to the first `{` at bracket/paren depth 0.
    // (Rust forbids bare struct literals in match scrutinees, so the first
    // such brace is the match body.)
    let (mut paren, mut bracket) = (0i32, 0i32);
    let mut body = None;
    for (j, t) in code.iter().enumerate().skip(kw + 1) {
        match t.text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            "{" if paren == 0 && bracket == 0 => {
                body = Some(j);
                break;
            }
            ";" | "}" if paren == 0 && bracket == 0 => break,
            _ => {}
        }
        // A nested `match` in the scrutinee gets its own visit.
        if j > kw + 1 && t.is_ident("match") {
            break;
        }
    }
    let Some(body) = body else { return };
    let close = matching_brace(code, body);

    // A scrutinee that is just an event-typed parameter (behind any mix of
    // `&`/`*`/parens) makes this an event match even if no arm names a
    // variant — `match **ev { _ => 0 }` over `ev: &&Event` must not pass.
    let scrut: Vec<&Token> = code[kw + 1..body]
        .iter()
        .filter(|t| !matches!(t.text.as_str(), "&" | "&&" | "*" | "(" | ")"))
        .collect();
    let mut is_event_match = scrut.len() == 1
        && scrut[0].kind == TokenKind::Ident
        && event_params.contains(&scrut[0].text);
    // (line, col, what) of arms that would swallow new variants.
    let mut wildcards: Vec<(u32, u32, String)> = Vec::new();

    let mut k = body + 1;
    while k < close {
        // Pattern: tokens up to `=>` at relative depth 0.
        let (mut p, mut br, mut bc) = (0i32, 0i32, 0i32);
        let pat_start = k;
        while k < close {
            let t = &code[k];
            if p == 0 && br == 0 && bc == 0 && t.is_punct("=>") {
                break;
            }
            match t.text.as_str() {
                "(" => p += 1,
                ")" => p -= 1,
                "[" => br += 1,
                "]" => br -= 1,
                "{" => bc += 1,
                "}" => bc -= 1,
                _ => {}
            }
            k += 1;
        }
        if k >= close {
            break;
        }
        let pat = &code[pat_start..k];
        if pat
            .windows(2)
            .any(|w| w[0].is_ident("Event") && w[1].is_punct("::"))
        {
            is_event_match = true;
        }
        analyze_pattern(pat, &mut wildcards);
        k += 1; // past `=>`

        // Body: a block, or an expression up to `,` at relative depth 0.
        if k < close && code[k].is_punct("{") {
            k = matching_brace(code, k) + 1;
        } else {
            let (mut p, mut br, mut bc) = (0i32, 0i32, 0i32);
            while k < close {
                let t = &code[k];
                if p == 0 && br == 0 && bc == 0 && t.is_punct(",") {
                    break;
                }
                match t.text.as_str() {
                    "(" => p += 1,
                    ")" => p -= 1,
                    "[" => br += 1,
                    "]" => br -= 1,
                    "{" => bc += 1,
                    "}" => bc -= 1,
                    _ => {}
                }
                k += 1;
            }
        }
        if k < close && code[k].is_punct(",") {
            k += 1;
        }
    }

    if is_event_match {
        for (line, col, what) in wildcards {
            out.push(Diagnostic::new(
                RuleId::TraceExhaustiveness,
                path,
                line,
                col,
                format!(
                    "{what} in a match over trace::Event; list every variant so a new \
                     event is a compile-time error, not a silent digest drift"
                ),
            ));
        }
    }
}

/// Record catch-all alternatives in one arm's pattern: a bare `_` or a
/// bare binding identifier (both match any variant). Guarded arms
/// (`_ if cond =>`) are not flagged: they don't exhaust the match alone.
fn analyze_pattern(pat: &[Token], wildcards: &mut Vec<(u32, u32, String)>) {
    let (mut p, mut br, mut bc) = (0i32, 0i32, 0i32);
    let mut alt: Vec<&Token> = Vec::new();
    let mut alts: Vec<Vec<&Token>> = Vec::new();
    for t in pat {
        match t.text.as_str() {
            "(" => p += 1,
            ")" => p -= 1,
            "[" => br += 1,
            "]" => br -= 1,
            "{" => bc += 1,
            "}" => bc -= 1,
            "|" if p == 0 && br == 0 && bc == 0 => {
                alts.push(std::mem::take(&mut alt));
                continue;
            }
            _ => {}
        }
        alt.push(t);
    }
    alts.push(alt);
    for alt in alts {
        match alt.as_slice() {
            [t] if t.text == "_" => {
                wildcards.push((t.line, t.col, "wildcard `_` arm".to_string()));
            }
            [t] if t.kind == TokenKind::Ident && t.text != "true" && t.text != "false" => {
                wildcards.push((
                    t.line,
                    t.col,
                    format!("catch-all binding `{}` arm", t.text),
                ));
            }
            _ => {}
        }
    }
}

// SL007 (hot-path-alloc) lives in [`crate::graph`] since v2: the hot set
// is the call-graph closure of `// simlint: hot-root` annotations rather
// than a name list, so allocation extraction happens during fact
// extraction and the findings are emitted by the graph pass with the
// reaching call chain in the message.

/// SL006 — dep-hygiene: every dependency in every workspace manifest must
/// be an in-repo `path` dependency (or inherit one via `workspace = true`).
/// The build is `--locked --offline`; a registry or git spec would break
/// hermeticity the moment someone runs `cargo update`.
pub fn dep_hygiene(path: &str, src: &str, out: &mut Vec<Diagnostic>) {
    let mut section: Option<String> = None;
    // An open `[dependencies.<name>]`-style table: (header line, name, has_path).
    let mut dep_table: Option<(u32, String, bool)> = None;

    let flush = |table: &mut Option<(u32, String, bool)>, out: &mut Vec<Diagnostic>| {
        if let Some((line, name, has_path)) = table.take() {
            if !has_path {
                out.push(Diagnostic::new(
                    RuleId::DepHygiene,
                    path,
                    line,
                    1,
                    format!(
                        "dependency table `{name}` has no `path` key; only in-repo path \
                         dependencies are allowed (the workspace builds --locked --offline)"
                    ),
                ));
            }
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            flush(&mut dep_table, out);
            let name = line.trim_matches(['[', ']']).trim().to_string();
            if name.ends_with("dependencies") {
                section = Some(name);
            } else if let Some(dep_name) = dep_table_name(&name) {
                section = None;
                dep_table = Some((lineno, dep_name, false));
            } else {
                section = None;
            }
            continue;
        }
        let Some(eq) = line.find('=') else { continue };
        let key = line[..eq].trim();
        let val = line[eq + 1..].trim();
        if let Some((_, _, has_path)) = dep_table.as_mut() {
            if key == "path" {
                *has_path = true;
            }
            continue;
        }
        if section.is_none() {
            continue;
        }
        let ok = (key.ends_with(".workspace") && val == "true")
            || (val.starts_with('{')
                && (inline_table_has_key(val, "path") || inline_table_has_key(val, "workspace")));
        if !ok {
            out.push(Diagnostic::new(
                RuleId::DepHygiene,
                path,
                lineno,
                1,
                format!(
                    "dependency `{key}` is not an in-repo path dependency; registry and \
                     git specs are forbidden (the workspace builds --locked --offline)"
                ),
            ));
        }
    }
    flush(&mut dep_table, out);
}

/// `[dependencies.foo]` / `[dev-dependencies.foo]` /
/// `[workspace.dependencies.foo]` → `Some("foo")`.
fn dep_table_name(section: &str) -> Option<String> {
    let parts: Vec<&str> = section.split('.').collect();
    // A dotted component *ending* in "dependencies" covers dev-/build-
    // variants; whatever follows it is the dependency name.
    let at = parts.iter().position(|p| p.ends_with("dependencies"))?;
    if at + 1 >= parts.len() {
        return None;
    }
    Some(parts[at + 1..].join("."))
}

/// Does an inline table `{ … }` contain `key =` at its top level?
fn inline_table_has_key(val: &str, key: &str) -> bool {
    let mut rest = val;
    while let Some(at) = rest.find(key) {
        let before_ok = at == 0
            || matches!(rest.as_bytes()[at - 1], b'{' | b',' | b' ' | b'\t');
        let after = rest[at + key.len()..].trim_start();
        if before_ok && after.starts_with('=') {
            return true;
        }
        rest = &rest[at + key.len()..];
    }
    false
}

/// Strip a `#`-comment from a TOML line, respecting basic strings.
pub fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn code(src: &str) -> Vec<Token> {
        lex(src).into_iter().filter(|t| !t.is_comment()).collect()
    }

    #[test]
    fn test_spans_cover_cfg_test_mod() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn b() { y.unwrap(); } }";
        let toks = code(src);
        let spans = test_spans(&toks);
        assert_eq!(spans.len(), 1);
        let mut out = Vec::new();
        panic_policy("f.rs", &toks, &spans, &mut out);
        // Only the non-test unwrap is reported.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn test_spans_handle_attr_stacks_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[path = \"x.rs\"]\nmod tests;\nfn c() { z.unwrap(); }";
        let toks = code(src);
        let spans = test_spans(&toks);
        let mut out = Vec::new();
        panic_policy("f.rs", &toks, &spans, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 4);
    }

    #[test]
    fn determinism_catches_all_four_classes() {
        let src = "use std::time::{Instant, SystemTime};\nfn f() { let t = Instant::now(); \
                   let r = thread_rng(); let m: HashMap<u8, u8> = HashMap::new(); }";
        let toks = code(src);
        let mut out = Vec::new();
        determinism("f.rs", &toks, &mut out);
        // SystemTime (import), Instant::now, thread_rng, HashMap ×2.
        assert_eq!(out.len(), 5, "{out:#?}");
        assert!(out.iter().all(|d| d.rule == RuleId::Determinism));
    }

    #[test]
    fn determinism_ignores_bare_instant_type() {
        // `Instant` as a type (e.g. a stored timestamp passed in from an
        // allowlisted module) is fine; only `Instant::now()` reads a clock.
        let toks = code("fn f(t0: Instant) -> u64 { t0.elapsed().as_nanos() }");
        let mut out = Vec::new();
        determinism("f.rs", &toks, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn panic_policy_allows_documented_expect() {
        let toks = code("fn f() { x.expect(\"queue is non-empty: we just pushed\"); }");
        let mut out = Vec::new();
        panic_policy("f.rs", &toks, &test_spans(&toks), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn panic_policy_rejects_empty_expect() {
        let toks = code("fn f() { x.expect(\"\"); }");
        let mut out = Vec::new();
        panic_policy("f.rs", &toks, &test_spans(&toks), &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn panic_policy_ignores_unwrap_or_variants() {
        let toks = code("fn f() { x.unwrap_or(0); y.unwrap_or_else(|| 1); z.unwrap_or_default(); }");
        let mut out = Vec::new();
        panic_policy("f.rs", &toks, &test_spans(&toks), &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn float_eq_catches_literal_and_method_forms() {
        let toks = code("fn f() { if x == 0.0 {} if r.mbps() != y {} if a.as_secs_f64() == b {} }");
        let mut out = Vec::new();
        float_eq("f.rs", &toks, &[], &mut out);
        assert_eq!(out.len(), 3, "{out:#?}");
    }

    #[test]
    fn float_eq_ignores_integer_compares() {
        let toks = code("fn f() { if x == 0 {} if t.as_nanos() != u {} if s == \"x\" {} }");
        let mut out = Vec::new();
        float_eq("f.rs", &toks, &[], &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unit_cast_catches_f64_and_u64_only() {
        let toks = code("fn f() { let a = x as f64; let b = y as u64; let c = z as usize; }");
        let mut out = Vec::new();
        unit_cast("f.rs", &toks, &[], &mut out);
        assert_eq!(out.len(), 2, "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_flags_wildcard_and_binding() {
        let src = "fn f(ev: &Event) { match ev { Event::Send { .. } => 1, _ => 0 }; \
                   match ev { Event::Drop { .. } => 1, other => 0 }; }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert_eq!(out.len(), 2, "{out:#?}");
        assert!(out[0].message.contains("wildcard"), "{}", out[0].message);
        assert!(out[1].message.contains("catch-all binding `other`"), "{}", out[1].message);
    }

    #[test]
    fn trace_exhaustiveness_ignores_non_event_matches() {
        let src = "fn f(x: u8) -> u8 { match x { 1 => 2, _ => 0 } }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_accepts_exhaustive_event_match() {
        let src = "fn f(ev: &Event) { match ev { Event::Send { .. } | Event::Drop { .. } => 1, \
                   Event::RunEnd { .. } => 0 }; }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_skips_guarded_wildcards() {
        let src = "fn f(ev: &Event, c: bool) { match ev { Event::Send { .. } => 1, \
                   _ if c => 2, Event::RunEnd { .. } => 0, _ => 3 }; }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        // Only the unguarded `_` arm fires.
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_finds_nested_match() {
        let src = "fn f(ev: &Event, x: u8) { match x { 1 => match ev { Event::Rto { .. } => 1, \
                   _ => 0 }, _ => 9 } }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_covers_reference_matches_without_event_patterns() {
        // `ev: &&Event`, all arms catch-alls: no `Event::` window exists,
        // so only the param-type scrutinee check can catch this.
        let src = "fn f(ev: &&Event) -> u8 { match **ev { _ => 0 } }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::TraceExhaustiveness);
    }

    #[test]
    fn trace_exhaustiveness_reference_param_single_deref() {
        let src = "fn f(ev: &trace::Event) -> u8 { match *ev { _ => 0 } }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn trace_exhaustiveness_ignores_non_event_param_matches() {
        let src = "fn f(x: &u8, ev: &Event) -> u8 { let _ = ev; match *x { _ => 0 } }";
        let toks = code(src);
        let mut out = Vec::new();
        trace_exhaustiveness("f.rs", &toks, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn dep_hygiene_accepts_path_and_workspace_deps() {
        let toml = "[dependencies]\nsimcore = { path = \"../simcore\" }\ntestkit.workspace = true\n\
                    [workspace.dependencies]\ncca = { path = \"crates/cca\" }\n";
        let mut out = Vec::new();
        dep_hygiene("Cargo.toml", toml, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn dep_hygiene_rejects_registry_and_git_specs() {
        let toml = "[dependencies]\nserde = \"1.0\"\nrand = { version = \"0.8\" }\n\
                    left = { git = \"https://example.com/x\" }\n";
        let mut out = Vec::new();
        dep_hygiene("Cargo.toml", toml, &mut out);
        assert_eq!(out.len(), 3, "{out:#?}");
    }

    #[test]
    fn dep_hygiene_checks_dotted_dep_tables() {
        let toml = "[dependencies.serde]\nversion = \"1.0\"\n\n[dependencies.simcore]\n\
                    path = \"../simcore\"\n";
        let mut out = Vec::new();
        dep_hygiene("Cargo.toml", toml, &mut out);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("serde"), "{}", out[0].message);
    }

    #[test]
    fn dep_hygiene_ignores_package_metadata() {
        let toml = "[package]\nname = \"x\"\nversion.workspace = true\n\n[profile.release]\ndebug = true\n";
        let mut out = Vec::new();
        dep_hygiene("Cargo.toml", toml, &mut out);
        assert!(out.is_empty(), "{out:#?}");
    }
}

//! The lint engine: configuration, file discovery, suppression directives,
//! and the driver that runs every rule over a file set.
//!
//! ## Suppression
//!
//! A finding is suppressed with a per-line directive naming the rule (slug
//! or `SLnnn` ID), either trailing the offending line or on a comment line
//! directly above it:
//!
//! ```text
//! let t0 = Instant::now(); // simlint: allow(determinism): bench timing only
//! ```
//!
//! ```text
//! // simlint: allow(panic-policy): mutex poisoning is unrecoverable here
//! let g = self.inner.lock().unwrap();
//! ```
//!
//! Directives carry a free-form justification after the closing paren.
//! **Unused directives are themselves errors** (`SL000/unused-allow`): a
//! suppression that no longer suppresses anything is stale documentation
//! and gets removed rather than rotting. TOML manifests use the same
//! syntax behind `#` comments.

use crate::diag::{Diagnostic, RuleId, Severity};
use crate::lexer::{self, Token};
use crate::rules;
use std::path::{Path, PathBuf};

/// Which paths each scoped rule applies to, plus walk exclusions.
/// Paths are workspace-relative with `/` separators; a scope entry matches
/// any file under that prefix.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Library-crate sources held to the panic policy (SL002).
    pub panic_scope: Vec<String>,
    /// Sim/CCA sources held to the float-eq rule (SL003).
    pub float_scope: Vec<String>,
    /// Sources held to the unit-cast rule (SL004).
    pub cast_scope: Vec<String>,
    /// Hot-path files held allocation-free per event (SL007).
    pub alloc_scope: Vec<String>,
    /// Files exempt from the determinism rule (SL001) wholesale. Empty for
    /// this workspace: the four legitimate wall-clock sites carry explicit
    /// justified `allow` directives instead, so each exemption is visible
    /// at the site it covers.
    pub determinism_allow: Vec<String>,
    /// Directory names never descended into.
    pub skip_dirs: Vec<String>,
}

impl Config {
    /// The scopes for *this* workspace: panic/float policy over the five
    /// library crates, unit-cast over `netsim`, everything else global.
    pub fn for_workspace(root: impl Into<PathBuf>) -> Config {
        let lib = [
            "crates/simcore/src",
            "crates/netsim/src",
            "crates/cca/src",
            "crates/core/src",
            // The scenario DSL + fuzzer: library code other tools embed
            // (canon, sweep, the repro CLI), so it carries library policy.
            "crates/scenario/src",
        ];
        Config {
            root: root.into(),
            panic_scope: lib.iter().map(|s| s.to_string()).collect(),
            float_scope: lib.iter().map(|s| s.to_string()).collect(),
            cast_scope: vec!["crates/netsim/src".to_string()],
            // The per-event bodies the perfbench suite measures: the sim
            // loop, the receiver's ACK machinery, the bottleneck queue —
            // plus the fuzzer crate, whose batch loop fans simulations out
            // across workers and must not allocate per generated event,
            // and the sweep service's per-row hot paths (entry checksums,
            // streaming histogram folds) that run once per store row.
            alloc_scope: vec![
                "crates/netsim/src/sim.rs".to_string(),
                "crates/netsim/src/receiver.rs".to_string(),
                "crates/netsim/src/link.rs".to_string(),
                "crates/scenario/src".to_string(),
                "crates/simcore/src/store.rs".to_string(),
                "crates/simcore/src/stats.rs".to_string(),
            ],
            determinism_allow: Vec::new(),
            skip_dirs: vec![
                "target".to_string(),
                ".git".to_string(),
                // simlint's own rule fixtures deliberately violate rules.
                "fixtures".to_string(),
                // Generated experiment artifacts, not source.
                "results".to_string(),
            ],
        }
    }

    /// A config whose scoped rules apply to every file — what the fixture
    /// tests use so a fixture exercises its rule regardless of location.
    pub fn everything(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            panic_scope: vec![String::new()],
            float_scope: vec![String::new()],
            cast_scope: vec![String::new()],
            alloc_scope: vec![String::new()],
            determinism_allow: Vec::new(),
            skip_dirs: vec!["target".to_string(), ".git".to_string()],
        }
    }

    fn in_scope(scope: &[String], rel: &str) -> bool {
        scope.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// One parsed `allow(…)` directive.
#[derive(Clone, Debug)]
struct Directive {
    /// Line the directive suppresses (its own line, or the next when the
    /// directive is alone on its line).
    target: u32,
    /// Rules it names.
    rules: Vec<RuleId>,
    /// Where the directive itself sits (for unused-allow reporting).
    line: u32,
    col: u32,
    used: bool,
}

/// Parse directives out of a Rust token stream. `code_lines` is the set of
/// lines holding at least one non-comment token, used to decide whether a
/// directive trails code (applies to its own line) or stands alone
/// (applies to the next line).
fn rust_directives(tokens: &[Token], path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let code_lines: std::collections::BTreeSet<u32> =
        tokens.iter().filter(|t| !t.is_comment()).map(|t| t.line).collect();
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*');
        if let Some(d) = parse_directive(body, t.line, t.col, code_lines.contains(&t.line), path, diags)
        {
            out.push(d);
        }
    }
    out
}

/// Parse directives out of a TOML file's `#` comments.
fn toml_directives(src: &str, path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx as u32 + 1;
        let before = rules::strip_toml_comment(raw);
        if before.len() == raw.len() {
            continue; // no comment on this line
        }
        let comment = &raw[before.len()..];
        let col = before.chars().count() as u32 + 1;
        let has_code = !before.trim().is_empty();
        if let Some(d) =
            parse_directive(comment.trim_start_matches('#'), line, col, has_code, path, diags)
        {
            out.push(d);
        }
    }
    out
}

/// Parse one comment body. Returns a directive if it is a well-formed
/// `simlint: allow(rule[, rule…])`, records an SL000 diagnostic if it
/// mentions simlint but cannot be parsed or names an unknown rule.
fn parse_directive(
    body: &str,
    line: u32,
    col: u32,
    trails_code: bool,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Directive> {
    let body = body.trim();
    let rest = body.strip_prefix("simlint:")?.trim_start();
    let bad = |msg: String, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic::new(RuleId::UnusedAllow, path, line, col, msg));
        None
    };
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
        return bad(
            format!("malformed simlint directive (expected `simlint: allow(<rule>)`): `{body}`"),
            diags,
        );
    };
    let mut rules_named = Vec::new();
    for name in inner.0.split(',') {
        let name = name.trim();
        match RuleId::from_name(name) {
            Some(r) => rules_named.push(r),
            None => {
                return bad(format!("unknown rule `{name}` in simlint allow directive"), diags)
            }
        }
    }
    if rules_named.is_empty() {
        return bad("empty simlint allow directive".to_string(), diags);
    }
    Some(Directive {
        target: if trails_code { line } else { line + 1 },
        rules: rules_named,
        line,
        col,
        used: false,
    })
}

/// Apply directives: drop suppressed findings, then report unused
/// directives as SL000 errors.
fn apply_suppressions(
    path: &str,
    mut directives: Vec<Directive>,
    raw: Vec<Diagnostic>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for dir in directives.iter_mut() {
            if dir.target == d.line && dir.rules.contains(&d.rule) {
                dir.used = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for dir in directives.iter().filter(|d| !d.used) {
        let names: Vec<&str> = dir.rules.iter().map(|r| r.slug()).collect();
        out.push(Diagnostic::new(
            RuleId::UnusedAllow,
            path,
            dir.line,
            dir.col,
            format!(
                "unused suppression: allow({}) matched no finding on line {}; remove it",
                names.join(", "),
                dir.target
            ),
        ));
    }
    out
}

/// Lint one Rust source file. `rel` is the workspace-relative path used
/// both for scope decisions and in diagnostics.
pub fn lint_rust(cfg: &Config, rel: &str, src: &str) -> Vec<Diagnostic> {
    let tokens = lexer::lex(src);
    let mut raw = Vec::new();
    let mut directives = rust_directives(&tokens, rel, &mut raw);
    let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
    let spans = rules::test_spans(&code);

    if !cfg.determinism_allow.iter().any(|p| p == rel) {
        rules::determinism(rel, &code, &mut raw);
    }
    if Config::in_scope(&cfg.panic_scope, rel) {
        rules::panic_policy(rel, &code, &spans, &mut raw);
    }
    if Config::in_scope(&cfg.float_scope, rel) {
        rules::float_eq(rel, &code, &spans, &mut raw);
    }
    if Config::in_scope(&cfg.cast_scope, rel) {
        rules::unit_cast(rel, &code, &spans, &mut raw);
    }
    if Config::in_scope(&cfg.alloc_scope, rel) {
        rules::hot_path_alloc(rel, &code, &spans, &mut raw);
    }
    rules::trace_exhaustiveness(rel, &code, &mut raw);

    // SL000 parse errors must never be "suppressed" by their own directive.
    let (meta, raw): (Vec<_>, Vec<_>) = raw.into_iter().partition(|d| d.rule == RuleId::UnusedAllow);
    let mut out = apply_suppressions(rel, std::mem::take(&mut directives), raw);
    out.extend(meta);
    sort_diags(&mut out);
    out
}

/// Lint one `Cargo.toml`.
pub fn lint_manifest(_cfg: &Config, rel: &str, src: &str) -> Vec<Diagnostic> {
    let mut raw = Vec::new();
    let directives = toml_directives(src, rel, &mut raw);
    let (meta, mut findings): (Vec<_>, Vec<_>) =
        raw.into_iter().partition(|d| d.rule == RuleId::UnusedAllow);
    let mut rule_out = Vec::new();
    rules::dep_hygiene(rel, src, &mut rule_out);
    findings.extend(rule_out);
    let mut out = apply_suppressions(rel, directives, findings);
    out.extend(meta);
    sort_diags(&mut out);
    out
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.col, b.rule.id()))
    });
}

/// A finished lint run.
pub struct LintReport {
    /// Findings across all files, sorted by (file, line, col).
    pub diags: Vec<Diagnostic>,
    /// Number of files inspected.
    pub files_checked: usize,
}

impl LintReport {
    /// Count of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Count of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Should the process exit non-zero?
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Lint every `.rs` and `Cargo.toml` under the config's root.
pub fn lint_workspace(cfg: &Config) -> LintReport {
    let mut files = Vec::new();
    collect_files(cfg, &cfg.root, &mut files);
    files.sort(); // deterministic output order, independent of readdir order
    lint_paths(cfg, &files)
}

/// Lint an explicit file list (absolute or root-relative paths).
pub fn lint_paths(cfg: &Config, files: &[PathBuf]) -> LintReport {
    let mut diags = Vec::new();
    let mut checked = 0usize;
    for f in files {
        let abs = if f.is_absolute() { f.clone() } else { cfg.root.join(f) };
        let rel = abs
            .strip_prefix(&cfg.root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&abs) else {
            diags.push(Diagnostic::new(
                RuleId::UnusedAllow,
                &rel,
                1,
                1,
                "cannot read file".to_string(),
            ));
            continue;
        };
        checked += 1;
        if rel.ends_with(".rs") {
            diags.extend(lint_rust(cfg, &rel, &src));
        } else if rel.ends_with("Cargo.toml") {
            diags.extend(lint_manifest(cfg, &rel, &src));
        }
    }
    sort_diags(&mut diags);
    LintReport { diags, files_checked: checked }
}

fn collect_files(cfg: &Config, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !cfg.skip_dirs.iter().any(|s| s.as_str() == name) {
                collect_files(cfg, &path, out);
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Walk upward from `start` to the manifest that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::everything("/nonexistent")
    }

    #[test]
    fn trailing_directive_suppresses_same_line() {
        let src = "fn f() { let m: HashMap<u8,u8> = x; } // simlint: allow(determinism): test map\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn standalone_directive_suppresses_next_line() {
        let src = "// simlint: allow(determinism): deliberate\nfn f() { let m: HashMap<u8,u8> = x; }\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn directive_accepts_numeric_id() {
        let src = "fn f() { let m: HashSet<u8> = x; } // simlint: allow(SL001)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unused_directive_is_an_error() {
        let src = "// simlint: allow(determinism): nothing here\nfn f() {}\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
        assert!(out[0].message.contains("unused suppression"), "{}", out[0].message);
    }

    #[test]
    fn unknown_rule_in_directive_is_an_error() {
        let src = "fn f() {} // simlint: allow(no-such-rule)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("unknown rule"), "{}", out[0].message);
    }

    #[test]
    fn malformed_directive_is_an_error() {
        let src = "fn f() {} // simlint: allowing(determinism)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("malformed"), "{}", out[0].message);
    }

    #[test]
    fn directive_suppresses_only_named_rule() {
        // The determinism finding is suppressed; the unwrap still fires.
        let src = "fn f() { let m: HashMap<u8,u8> = y.unwrap(); } // simlint: allow(determinism)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::PanicPolicy);
    }

    #[test]
    fn multi_rule_directive() {
        let src =
            "fn f() { let m: HashMap<u8,u8> = y.unwrap(); } // simlint: allow(determinism, panic-policy)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn scoped_rules_respect_config_paths() {
        let mut c = Config::for_workspace("/nonexistent");
        c.determinism_allow.clear();
        // unwrap outside the panic scope: no finding.
        let out = lint_rust(&c, "crates/bench/src/x.rs", "fn f() { y.unwrap(); }");
        assert!(out.is_empty(), "{out:#?}");
        // Same code inside a library crate: finding.
        let out = lint_rust(&c, "crates/netsim/src/x.rs", "fn f() { y.unwrap(); }");
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn determinism_allowlist_exempts_whole_file() {
        let mut c = Config::for_workspace("/nonexistent");
        c.determinism_allow.push("crates/x/src/timing.rs".to_string());
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint_rust(&c, "crates/x/src/timing.rs", src).is_empty());
        assert_eq!(lint_rust(&c, "crates/x/src/other.rs", src).len(), 1);
    }

    #[test]
    fn toml_directive_suppresses_dep_finding() {
        let toml = "[dependencies]\nserde = \"1.0\" # simlint: allow(dep-hygiene): fixture\n";
        let out = lint_manifest(&cfg(), "Cargo.toml", toml);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn toml_unused_directive_is_an_error() {
        let toml = "[package]\nname = \"x\" # simlint: allow(dep-hygiene)\n";
        let out = lint_manifest(&cfg(), "Cargo.toml", toml);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn report_failure_logic() {
        let mk = |sev: Severity| Diagnostic {
            rule: RuleId::FloatEq,
            severity: sev,
            file: "f.rs".into(),
            line: 1,
            col: 1,
            message: String::new(),
        };
        let warn_only = LintReport { diags: vec![mk(Severity::Warning)], files_checked: 1 };
        assert!(!warn_only.failed(false));
        assert!(warn_only.failed(true));
        let err = LintReport { diags: vec![mk(Severity::Error)], files_checked: 1 };
        assert!(err.failed(false));
    }
}

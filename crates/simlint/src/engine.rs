//! The lint engine: configuration, file discovery, suppression directives,
//! and the two-phase driver that runs every rule over a file set.
//!
//! ## Two phases
//!
//! Phase 1 ([`analyze_rust`] / [`analyze_manifest`]) is per-file and pure:
//! lex, parse, run the local rules (SL001–SL006), extract graph facts, and
//! parse directives — *without* applying suppressions. The result
//! ([`FileAnalysis`]) depends only on the file's bytes and the config, so
//! it is what the incremental cache ([`crate::cache`]) stores.
//!
//! Phase 2 ([`finish`]) joins all analyses: the call-graph rules
//! (SL007 v2/SL008/SL009/SL010, see [`crate::graph`]) run over every
//! file's facts, then suppressions are applied per file and unused
//! directives become SL000 errors. Phase 2 is cheap and always runs
//! fresh, which is how cached and uncached runs stay byte-identical.
//!
//! ## Suppression
//!
//! A finding is suppressed with a per-line directive naming the rule (slug
//! or `SLnnn` ID), either trailing the offending line or on a comment line
//! directly above it:
//!
//! ```text
//! let t0 = Instant::now(); // simlint: allow(determinism): bench timing only
//! ```
//!
//! ```text
//! // simlint: allow(panic-policy): mutex poisoning is unrecoverable here
//! let g = self.inner.lock().unwrap();
//! ```
//!
//! Directives carry a free-form justification after the closing paren.
//! **Unused directives are themselves errors** (`SL000/unused-allow`): a
//! suppression that no longer suppresses anything is stale documentation
//! and gets removed rather than rotting. TOML manifests use the same
//! syntax behind `#` comments.
//!
//! `allow(determinism-taint)` is special: placed on a call line it both
//! suppresses the SL008 finding *and* stops the taint from propagating
//! through that edge (a declared timing-only boundary). The graph pass
//! reports which of these actually contained an edge, so unused ones are
//! still SL000 errors.

use crate::cache;
use crate::diag::{Diagnostic, RuleId, Severity};
use crate::graph;
use crate::lexer::{self, Token};
use crate::parse;
use crate::rules;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Which paths each scoped rule applies to, plus walk exclusions.
/// Paths are workspace-relative with `/` separators; a scope entry matches
/// any file under that prefix.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root all paths are relative to.
    pub root: PathBuf,
    /// Library-crate sources held to the panic policy (SL002).
    pub panic_scope: Vec<String>,
    /// Sim/CCA sources held to the float-eq rule (SL003).
    pub float_scope: Vec<String>,
    /// Sources held to the unit-cast rule (SL004).
    pub cast_scope: Vec<String>,
    /// Sources where SL008 determinism-taint call edges are reported.
    /// (Taint *propagates* through all files; only findings are scoped.)
    pub taint_scope: Vec<String>,
    /// Sources where SL010 discarded-Result findings are reported.
    pub result_scope: Vec<String>,
    /// Sources whose `Event::…` constructions count as live for SL009.
    pub event_construct_scope: Vec<String>,
    /// The file defining `trace::Event` (empty = any file defining an
    /// `enum Event`, which is what the fixture config uses).
    pub trace_def_path: String,
    /// Files exempt from the determinism rule (SL001) wholesale. Empty for
    /// this workspace: the legitimate wall-clock sites carry explicit
    /// justified `allow` directives instead, so each exemption is visible
    /// at the site it covers.
    pub determinism_allow: Vec<String>,
    /// Directory names never descended into.
    pub skip_dirs: Vec<String>,
    /// Where [`lint_workspace`] persists per-file analyses between runs;
    /// `None` disables the cache (fixtures, ad-hoc runs).
    pub cache_path: Option<PathBuf>,
}

impl Config {
    /// The scopes for *this* workspace: panic/float/taint/result policy
    /// over the five library crates, unit-cast over `netsim`, SL009 live
    /// constructions in `netsim`, everything else global. SL007's hot set
    /// is not a path scope any more — it is the call-graph closure of the
    /// `// simlint: hot-root` annotations wherever they live.
    pub fn for_workspace(root: impl Into<PathBuf>) -> Config {
        let lib = [
            "crates/simcore/src",
            "crates/netsim/src",
            "crates/cca/src",
            "crates/core/src",
            // The scenario DSL + fuzzer: library code other tools embed
            // (canon, sweep, the repro CLI), so it carries library policy.
            "crates/scenario/src",
        ];
        let lib: Vec<String> = lib.iter().map(|s| s.to_string()).collect();
        Config {
            root: root.into(),
            panic_scope: lib.clone(),
            float_scope: lib.clone(),
            cast_scope: vec!["crates/netsim/src".to_string()],
            taint_scope: lib.clone(),
            result_scope: lib,
            event_construct_scope: vec!["crates/netsim/src".to_string()],
            trace_def_path: "crates/simcore/src/trace.rs".to_string(),
            determinism_allow: Vec::new(),
            skip_dirs: vec![
                "target".to_string(),
                ".git".to_string(),
                // simlint's own rule fixtures deliberately violate rules.
                "fixtures".to_string(),
                // Generated experiment artifacts, not source.
                "results".to_string(),
            ],
            cache_path: None,
        }
    }

    /// A config whose scoped rules apply to every file — what the fixture
    /// tests use so a fixture exercises its rule regardless of location.
    pub fn everything(root: impl Into<PathBuf>) -> Config {
        Config {
            root: root.into(),
            panic_scope: vec![String::new()],
            float_scope: vec![String::new()],
            cast_scope: vec![String::new()],
            taint_scope: vec![String::new()],
            result_scope: vec![String::new()],
            event_construct_scope: vec![String::new()],
            trace_def_path: String::new(),
            determinism_allow: Vec::new(),
            skip_dirs: vec!["target".to_string(), ".git".to_string()],
            cache_path: None,
        }
    }

    fn in_scope(scope: &[String], rel: &str) -> bool {
        scope.iter().any(|p| rel.starts_with(p.as_str()))
    }
}

/// One parsed `allow(…)` directive.
#[derive(Clone, Debug)]
pub struct Directive {
    /// Line the directive suppresses (its own line, or the next when the
    /// directive is alone on its line).
    pub target: u32,
    /// Rules it names.
    pub rules: Vec<RuleId>,
    /// Where the directive itself sits (for unused-allow reporting).
    pub line: u32,
    pub col: u32,
}

/// Phase-1 output for one file: everything the graph pass and the
/// suppression pass need, none of it suppressed yet. This is the unit the
/// incremental cache stores — it depends only on the file bytes and the
/// config fingerprint.
#[derive(Clone, Debug)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub rel: String,
    /// Raw local findings (SL001–SL006) plus SL000 meta errors (malformed
    /// directives, unattached markers), pre-suppression.
    pub local_diags: Vec<Diagnostic>,
    /// Every well-formed allow directive in the file.
    pub directives: Vec<Directive>,
    /// Call-graph facts (empty for manifests).
    pub facts: graph::FileFacts,
}

/// Parse directives out of a Rust token stream.
fn rust_directives(tokens: &[Token], path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let code_lines: BTreeSet<u32> =
        tokens.iter().filter(|t| !t.is_comment()).map(|t| t.line).collect();
    let mut out = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_end_matches('/')
            .trim_end_matches('*');
        if let Some(d) =
            parse_directive(body, t.line, t.col, code_lines.contains(&t.line), path, diags)
        {
            out.push(d);
        }
    }
    out
}

/// Parse directives out of a TOML file's `#` comments.
fn toml_directives(src: &str, path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Directive> {
    let mut out = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = idx as u32 + 1;
        let before = rules::strip_toml_comment(raw);
        if before.len() == raw.len() {
            continue; // no comment on this line
        }
        let comment = &raw[before.len()..];
        let col = before.chars().count() as u32 + 1;
        let has_code = !before.trim().is_empty();
        if let Some(d) =
            parse_directive(comment.trim_start_matches('#'), line, col, has_code, path, diags)
        {
            out.push(d);
        }
    }
    out
}

/// Parse one comment body. Returns a directive if it is a well-formed
/// `simlint: allow(rule[, rule…])`, records an SL000 diagnostic if it
/// mentions simlint but cannot be parsed or names an unknown rule.
/// `hot-root`/`cold` markers are the graph pass's business
/// ([`graph::extract`]) and pass through silently here.
fn parse_directive(
    body: &str,
    line: u32,
    col: u32,
    trails_code: bool,
    path: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Directive> {
    let body = body.trim();
    let rest = body.strip_prefix("simlint:")?.trim_start();
    for marker in ["hot-root", "cold"] {
        if let Some(after) = rest.strip_prefix(marker) {
            let after = after.trim_start();
            if after.is_empty() || after.starts_with(':') {
                return None; // a graph marker, not an allow directive
            }
        }
    }
    let bad = |msg: String, diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic::new(RuleId::UnusedAllow, path, line, col, msg));
        None
    };
    let Some(inner) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')')) else {
        return bad(
            format!("malformed simlint directive (expected `simlint: allow(<rule>)`): `{body}`"),
            diags,
        );
    };
    let mut rules_named = Vec::new();
    for name in inner.0.split(',') {
        let name = name.trim();
        match RuleId::from_name(name) {
            Some(r) => rules_named.push(r),
            None => {
                return bad(format!("unknown rule `{name}` in simlint allow directive"), diags)
            }
        }
    }
    if rules_named.is_empty() {
        return bad("empty simlint allow directive".to_string(), diags);
    }
    Some(Directive {
        target: if trails_code { line } else { line + 1 },
        rules: rules_named,
        line,
        col,
    })
}

/// Apply directives to one file's raw findings: drop suppressed findings,
/// then report unused directives as SL000 errors. `pre_used` holds target
/// lines of `allow(determinism-taint)` directives the graph pass consumed
/// by containing an edge. When `judge_graph_dirs` is false (partial file
/// set), directives naming a graph rule are never reported unused — the
/// graph couldn't see enough of the workspace to judge them.
fn apply_suppressions(
    path: &str,
    directives: &[Directive],
    pre_used: &BTreeSet<u32>,
    raw: Vec<Diagnostic>,
    judge_graph_dirs: bool,
) -> Vec<Diagnostic> {
    let mut used = vec![false; directives.len()];
    for (i, dir) in directives.iter().enumerate() {
        if pre_used.contains(&dir.target) && dir.rules.contains(&RuleId::DeterminismTaint) {
            used[i] = true;
        }
    }
    let mut out = Vec::new();
    for d in raw {
        let mut suppressed = false;
        for (i, dir) in directives.iter().enumerate() {
            if dir.target == d.line && dir.rules.contains(&d.rule) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (i, dir) in directives.iter().enumerate() {
        if used[i] {
            continue;
        }
        if !judge_graph_dirs && dir.rules.iter().any(|r| graph::GRAPH_RULES.contains(r)) {
            continue;
        }
        let names: Vec<&str> = dir.rules.iter().map(|r| r.slug()).collect();
        out.push(Diagnostic::new(
            RuleId::UnusedAllow,
            path,
            dir.line,
            dir.col,
            format!(
                "unused suppression: allow({}) matched no finding on line {}; remove it",
                names.join(", "),
                dir.target
            ),
        ));
    }
    out
}

/// Phase 1 for one Rust source file. `rel` is the workspace-relative path
/// used both for scope decisions and in diagnostics.
pub fn analyze_rust(cfg: &Config, rel: &str, src: &str) -> FileAnalysis {
    let tokens = lexer::lex(src);
    let mut local = Vec::new();
    let directives = rust_directives(&tokens, rel, &mut local);
    let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
    let spans = rules::test_spans(&code);

    if !cfg.determinism_allow.iter().any(|p| p == rel) {
        rules::determinism(rel, &code, &mut local);
    }
    if Config::in_scope(&cfg.panic_scope, rel) {
        rules::panic_policy(rel, &code, &spans, &mut local);
    }
    if Config::in_scope(&cfg.float_scope, rel) {
        rules::float_eq(rel, &code, &spans, &mut local);
    }
    if Config::in_scope(&cfg.cast_scope, rel) {
        rules::unit_cast(rel, &code, &spans, &mut local);
    }
    rules::trace_exhaustiveness(rel, &code, &mut local);

    // Graph facts need the *unfiltered* stream (markers live in comments)
    // and line-based test spans (the parser's indices are unfiltered).
    let line_spans: Vec<(u32, u32)> =
        spans.iter().map(|&(a, b)| (code[a].line, code[b].line)).collect();
    let parsed = parse::parse(&tokens);
    let facts = graph::extract(rel, &tokens, &parsed, &line_spans, &mut local);

    FileAnalysis { rel: rel.to_string(), local_diags: local, directives, facts }
}

/// Phase 1 for one `Cargo.toml`.
pub fn analyze_manifest(_cfg: &Config, rel: &str, src: &str) -> FileAnalysis {
    let mut local = Vec::new();
    let directives = toml_directives(src, rel, &mut local);
    rules::dep_hygiene(rel, src, &mut local);
    FileAnalysis {
        rel: rel.to_string(),
        local_diags: local,
        directives,
        facts: graph::FileFacts::default(),
    }
}

/// Phase 2: run the graph rules over every analysis, then apply
/// suppressions per file. `complete` says the file set covers the whole
/// workspace (enables SL009/SL010, unused-cold checks, and unused-allow
/// judgement of graph-rule directives); `require_roots` makes a hot-root
/// annotated workspace mandatory.
pub fn finish(
    cfg: &Config,
    analyses: &[FileAnalysis],
    complete: bool,
    require_roots: bool,
) -> Vec<Diagnostic> {
    let gfiles: Vec<(String, graph::FileFacts)> =
        analyses.iter().map(|a| (a.rel.clone(), a.facts.clone())).collect();
    let mut taint_allows: BTreeSet<(usize, u32)> = BTreeSet::new();
    for (i, a) in analyses.iter().enumerate() {
        for d in &a.directives {
            if d.rules.contains(&RuleId::DeterminismTaint) {
                taint_allows.insert((i, d.target));
            }
        }
    }
    let gcfg = graph::GraphConfig {
        complete,
        require_roots,
        taint_scope: &cfg.taint_scope,
        result_scope: &cfg.result_scope,
        event_scope: &cfg.event_construct_scope,
        trace_def: &cfg.trace_def_path,
    };
    let gout = graph::run(&gfiles, &gcfg, &taint_allows);

    let mut graph_by_file: std::collections::BTreeMap<String, Vec<Diagnostic>> =
        std::collections::BTreeMap::new();
    for d in gout.diags {
        graph_by_file.entry(d.file.clone()).or_default().push(d);
    }

    let mut out = Vec::new();
    for (i, a) in analyses.iter().enumerate() {
        // SL000 meta errors (parse failures, unattached markers, unused
        // cold markers) must never be "suppressed" by a directive.
        let mut raw = Vec::new();
        let mut meta = Vec::new();
        for d in a.local_diags.iter().cloned() {
            if d.rule == RuleId::UnusedAllow {
                meta.push(d);
            } else {
                raw.push(d);
            }
        }
        for d in graph_by_file.remove(&a.rel).unwrap_or_default() {
            if d.rule == RuleId::UnusedAllow {
                meta.push(d);
            } else {
                raw.push(d);
            }
        }
        let pre_used: BTreeSet<u32> = gout
            .used_taint_allows
            .iter()
            .filter(|&&(fi, _)| fi == i)
            .map(|&(_, l)| l)
            .collect();
        let mut file_out = apply_suppressions(&a.rel, &a.directives, &pre_used, raw, complete);
        file_out.extend(meta);
        out.extend(file_out);
    }
    // Graph diags addressed to files outside the analysis set (the
    // zero-roots guard when no root Cargo.toml was linted).
    for (_, ds) in graph_by_file {
        out.extend(ds);
    }
    sort_diags(&mut out);
    out
}

/// Lint one Rust source file as a self-contained unit (fixtures, tests).
pub fn lint_rust(cfg: &Config, rel: &str, src: &str) -> Vec<Diagnostic> {
    finish(cfg, &[analyze_rust(cfg, rel, src)], true, false)
}

/// Lint one `Cargo.toml` as a self-contained unit.
pub fn lint_manifest(cfg: &Config, rel: &str, src: &str) -> Vec<Diagnostic> {
    finish(cfg, &[analyze_manifest(cfg, rel, src)], true, false)
}

fn sort_diags(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule.id())
            .cmp(&(b.file.as_str(), b.line, b.col, b.rule.id()))
    });
}

/// A finished lint run.
pub struct LintReport {
    /// Findings across all files, sorted by (file, line, col).
    pub diags: Vec<Diagnostic>,
    /// Number of files inspected.
    pub files_checked: usize,
    /// Of those, how many were served from the incremental cache.
    pub files_reused: usize,
}

impl LintReport {
    /// Count of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Count of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Should the process exit non-zero?
    pub fn failed(&self, deny_warnings: bool) -> bool {
        self.errors() > 0 || (deny_warnings && self.warnings() > 0)
    }
}

/// Lint every `.rs` and `Cargo.toml` under the config's root: the
/// complete-workspace mode. Hot roots are required, SL009/SL010 run, and
/// per-file analyses round-trip through the incremental cache when
/// `cfg.cache_path` is set.
pub fn lint_workspace(cfg: &Config) -> LintReport {
    let mut files = Vec::new();
    collect_files(cfg, &cfg.root, &mut files);
    files.sort(); // deterministic output order, independent of readdir order

    let fingerprint = cache::fingerprint(cfg);
    let cached = match &cfg.cache_path {
        Some(p) => cache::Cache::load(p, &fingerprint),
        None => cache::Cache::default(),
    };

    let mut analyses = Vec::new();
    let mut digests = Vec::new();
    let mut reused = 0usize;
    let mut unreadable = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&cfg.root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(f) else {
            unreadable.push(Diagnostic::new(
                RuleId::UnusedAllow,
                &rel,
                1,
                1,
                "cannot read file".to_string(),
            ));
            continue;
        };
        let digest = simcore::store::Digest::of(src.as_bytes()).hex();
        if let Some(hit) = cached.get(&rel, &digest) {
            analyses.push(hit.clone());
            reused += 1;
        } else if rel.ends_with(".rs") {
            analyses.push(analyze_rust(cfg, &rel, &src));
        } else {
            analyses.push(analyze_manifest(cfg, &rel, &src));
        }
        digests.push(digest);
    }

    let mut diags = finish(cfg, &analyses, true, true);
    diags.extend(unreadable);
    sort_diags(&mut diags);

    if let Some(path) = &cfg.cache_path {
        // Rebuild from the current file set: entries for deleted files
        // drop out, every current file (cached or fresh) is persisted.
        let store = cache::Cache::build(&fingerprint, &analyses, &digests);
        let _ = store.save(path); // cache write failure is not a lint failure
    }

    LintReport { diags, files_checked: analyses.len(), files_reused: reused }
}

/// Lint an explicit file list (absolute or root-relative paths). This is
/// the *partial* mode: the graph rules that need whole-workspace
/// visibility (SL009, SL010, unused-cold, zero-roots) stay quiet, and
/// directives naming graph rules are never reported unused.
pub fn lint_paths(cfg: &Config, files: &[PathBuf]) -> LintReport {
    let mut analyses = Vec::new();
    let mut unreadable = Vec::new();
    for f in files {
        let abs = if f.is_absolute() { f.clone() } else { cfg.root.join(f) };
        let rel = abs
            .strip_prefix(&cfg.root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(&abs) else {
            unreadable.push(Diagnostic::new(
                RuleId::UnusedAllow,
                &rel,
                1,
                1,
                "cannot read file".to_string(),
            ));
            continue;
        };
        if rel.ends_with(".rs") {
            analyses.push(analyze_rust(cfg, &rel, &src));
        } else if rel.ends_with("Cargo.toml") {
            analyses.push(analyze_manifest(cfg, &rel, &src));
        }
    }
    let mut diags = finish(cfg, &analyses, false, false);
    diags.extend(unreadable);
    sort_diags(&mut diags);
    LintReport { diags, files_checked: analyses.len(), files_reused: 0 }
}

fn collect_files(cfg: &Config, dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !cfg.skip_dirs.iter().any(|s| s.as_str() == name) {
                collect_files(cfg, &path, out);
            }
        } else if name.ends_with(".rs") || name == "Cargo.toml" {
            out.push(path);
        }
    }
}

/// Walk upward from `start` to the manifest that declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::everything("/nonexistent")
    }

    #[test]
    fn trailing_directive_suppresses_same_line() {
        let src = "fn f() { let m: HashMap<u8,u8> = x; } // simlint: allow(determinism): test map\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn standalone_directive_suppresses_next_line() {
        let src = "// simlint: allow(determinism): deliberate\nfn f() { let m: HashMap<u8,u8> = x; }\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn directive_accepts_numeric_id() {
        let src = "fn f() { let m: HashSet<u8> = x; } // simlint: allow(SL001)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unused_directive_is_an_error() {
        let src = "// simlint: allow(determinism): nothing here\nfn f() {}\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
        assert!(out[0].message.contains("unused suppression"), "{}", out[0].message);
    }

    #[test]
    fn unknown_rule_in_directive_is_an_error() {
        let src = "fn f() {} // simlint: allow(no-such-rule)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("unknown rule"), "{}", out[0].message);
    }

    #[test]
    fn malformed_directive_is_an_error() {
        let src = "fn f() {} // simlint: allowing(determinism)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert!(out[0].message.contains("malformed"), "{}", out[0].message);
    }

    #[test]
    fn markers_are_not_malformed_directives() {
        let src = "// simlint: hot-root\nfn pump() {}\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn directive_suppresses_only_named_rule() {
        // The determinism finding is suppressed; the unwrap still fires.
        let src = "fn f() { let m: HashMap<u8,u8> = y.unwrap(); } // simlint: allow(determinism)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::PanicPolicy);
    }

    #[test]
    fn multi_rule_directive() {
        let src =
            "fn f() { let m: HashMap<u8,u8> = y.unwrap(); } // simlint: allow(determinism, panic-policy)\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn scoped_rules_respect_config_paths() {
        let mut c = Config::for_workspace("/nonexistent");
        c.determinism_allow.clear();
        // unwrap outside the panic scope: no finding.
        let out = lint_rust(&c, "crates/bench/src/x.rs", "fn f() { y.unwrap(); }");
        assert!(out.is_empty(), "{out:#?}");
        // Same code inside a library crate: finding.
        let out = lint_rust(&c, "crates/netsim/src/x.rs", "fn f() { y.unwrap(); }");
        assert_eq!(out.len(), 1, "{out:#?}");
    }

    #[test]
    fn determinism_allowlist_exempts_whole_file() {
        let mut c = Config::for_workspace("/nonexistent");
        c.determinism_allow.push("crates/x/src/timing.rs".to_string());
        // SL001 is exempted by the allowlist; the SL008 taint edge from
        // `f` into nothing (no callers) produces no finding either.
        let src = "fn f() { let t = Instant::now(); }";
        assert!(lint_rust(&c, "crates/x/src/timing.rs", src).is_empty());
        assert_eq!(lint_rust(&c, "crates/x/src/other.rs", src).len(), 1);
    }

    #[test]
    fn taint_allow_suppresses_edge_and_counts_used() {
        let src = "\
fn wall_now() -> u64 {
    Instant::now() // simlint: allow(determinism): timing sink only
}
fn caller() {
    wall_now(); // simlint: allow(determinism-taint): declared timing boundary
}
fn grand() { caller(); }
";
        let out = lint_rust(&cfg(), "f.rs", src);
        // The contained edge stops propagation: grand sees nothing, and
        // neither allow is reported unused.
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn unused_taint_allow_is_an_error() {
        let src = "fn pure() -> u64 { 7 }\nfn caller() {\n    pure(); // simlint: allow(determinism-taint): nothing here\n}\n";
        let out = lint_rust(&cfg(), "f.rs", src);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn partial_mode_never_reports_graph_directives_unused() {
        let src = "fn caller() {\n    helper(); // simlint: allow(hot-path-alloc): once per run\n}\n";
        let a = analyze_rust(&cfg(), "f.rs", src);
        // Partial (complete=false): the allow is exempt from judgement.
        let out = finish(&cfg(), &[a.clone()], false, false);
        assert!(out.is_empty(), "{out:#?}");
        // Complete: it is stale and reported.
        let out = finish(&cfg(), &[a], true, false);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn toml_directive_suppresses_dep_finding() {
        let toml = "[dependencies]\nserde = \"1.0\" # simlint: allow(dep-hygiene): fixture\n";
        let out = lint_manifest(&cfg(), "Cargo.toml", toml);
        assert!(out.is_empty(), "{out:#?}");
    }

    #[test]
    fn toml_unused_directive_is_an_error() {
        let toml = "[package]\nname = \"x\" # simlint: allow(dep-hygiene)\n";
        let out = lint_manifest(&cfg(), "Cargo.toml", toml);
        assert_eq!(out.len(), 1, "{out:#?}");
        assert_eq!(out[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn report_failure_logic() {
        let mk = |sev: Severity| Diagnostic {
            rule: RuleId::FloatEq,
            severity: sev,
            file: "f.rs".into(),
            line: 1,
            col: 1,
            message: String::new(),
        };
        let warn_only =
            LintReport { diags: vec![mk(Severity::Warning)], files_checked: 1, files_reused: 0 };
        assert!(!warn_only.failed(false));
        assert!(warn_only.failed(true));
        let err = LintReport { diags: vec![mk(Severity::Error)], files_checked: 1, files_reused: 0 };
        assert!(err.failed(false));
    }
}

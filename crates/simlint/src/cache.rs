//! The incremental lint cache: per-file phase-1 analyses keyed by content
//! digest, so a warm `repro lint` over an unchanged workspace re-lexes
//! nothing.
//!
//! ## What is cached, and why it's sound
//!
//! Only phase 1 ([`crate::engine::FileAnalysis`]) is cached: raw local
//! findings, directives, and call-graph facts — all pre-suppression, all
//! functions of a single file's bytes plus the config. Phase 2 (the graph
//! pass and suppression judgement) always runs fresh over the full fact
//! set, because its output depends on *other* files. A cached run and a
//! cold run therefore produce byte-identical diagnostics — CI asserts
//! exactly that.
//!
//! ## Invalidation
//!
//! The header carries [`RULES_VERSION`] and a config fingerprint (the
//! workspace `Digest` over a canonical rendering of every scope list).
//! Either changing discards the whole cache. Per entry, the key is the
//! file's content digest (`simcore::store`'s FNV-1a pair, the same
//! primitive the sweep store uses for content addressing): any edit
//! misses, and the store is rebuilt from the current file set on every
//! run so entries for deleted files age out immediately.
//!
//! ## Format
//!
//! A line-oriented text file. Free-text fields (diagnostic messages,
//! allocation descriptions, paths) are JSON-escaped and always last on
//! their line; everything else is space-separated fixed fields. Any parse
//! anomaly discards the whole cache — it is a cache, not a database.

use crate::diag::{json_escape, Diagnostic, RuleId, Severity};
use crate::engine::{Config, Directive, FileAnalysis};
use crate::graph::{AllocFact, CallFact, CallKind, DiscardFact, EventDef, FileFacts, FnFact};
use std::collections::BTreeMap;
use std::path::Path;

/// Bumped whenever rule semantics, fact extraction, or this format
/// change: a version mismatch discards the cache wholesale.
pub const RULES_VERSION: &str = "simlint-v2.0";

/// Fingerprint of everything that affects phase-1 output besides the file
/// bytes: the rules version and every config scope knob.
pub fn fingerprint(cfg: &Config) -> String {
    let mut canon = String::new();
    canon.push_str(RULES_VERSION);
    let mut section = |name: &str, items: &[String]| {
        canon.push('\x1f');
        canon.push_str(name);
        for it in items {
            canon.push('\x1e');
            canon.push_str(it);
        }
    };
    section("panic", &cfg.panic_scope);
    section("float", &cfg.float_scope);
    section("cast", &cfg.cast_scope);
    section("taint", &cfg.taint_scope);
    section("result", &cfg.result_scope);
    section("event", &cfg.event_construct_scope);
    section("trace_def", std::slice::from_ref(&cfg.trace_def_path));
    section("det_allow", &cfg.determinism_allow);
    simcore::store::Digest::of(canon.as_bytes()).hex()
}

/// The cache store: `rel → (content digest, analysis)`.
#[derive(Default)]
pub struct Cache {
    fingerprint: String,
    entries: BTreeMap<String, (String, FileAnalysis)>,
}

impl Cache {
    /// Load from `path`; any miss, version/fingerprint mismatch, or parse
    /// anomaly yields an empty cache (a cold run, never an error).
    pub fn load(path: &Path, fingerprint: &str) -> Cache {
        let Ok(text) = std::fs::read_to_string(path) else {
            return Cache { fingerprint: fingerprint.to_string(), entries: BTreeMap::new() };
        };
        parse(&text, fingerprint).unwrap_or_else(|| Cache {
            fingerprint: fingerprint.to_string(),
            entries: BTreeMap::new(),
        })
    }

    /// The cached analysis for `rel`, if its content digest still matches.
    pub fn get(&self, rel: &str, digest: &str) -> Option<&FileAnalysis> {
        let (d, a) = self.entries.get(rel)?;
        (d == digest).then_some(a)
    }

    /// A store of the current run: one entry per analysis (`digests` is
    /// parallel to `analyses`).
    pub fn build(fingerprint: &str, analyses: &[FileAnalysis], digests: &[String]) -> Cache {
        let mut entries = BTreeMap::new();
        for (a, d) in analyses.iter().zip(digests) {
            entries.insert(a.rel.clone(), (d.clone(), a.clone()));
        }
        Cache { fingerprint: fingerprint.to_string(), entries }
    }

    /// Atomically persist: write a sibling temp file, then rename over.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut out = String::new();
        out.push_str(&format!("simlint-cache {} {}\n", RULES_VERSION, self.fingerprint));
        for (rel, (digest, a)) in &self.entries {
            render_entry(&mut out, rel, digest, a);
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, out)?;
        std::fs::rename(&tmp, path)
    }
}

fn render_entry(out: &mut String, rel: &str, digest: &str, a: &FileAnalysis) {
    out.push_str(&format!("file {} {}\n", digest, json_escape(rel)));
    for d in &a.local_diags {
        let sev = if d.severity == Severity::Error { 'E' } else { 'W' };
        out.push_str(&format!(
            "d {} {} {} {} {}\n",
            d.rule.id(),
            sev,
            d.line,
            d.col,
            json_escape(&d.message)
        ));
    }
    for v in &a.directives {
        let slugs: Vec<&str> = v.rules.iter().map(|r| r.slug()).collect();
        out.push_str(&format!("v {} {} {} {}\n", v.target, v.line, v.col, slugs.join(",")));
    }
    for f in &a.facts.fns {
        let mut flags = String::new();
        if f.is_test {
            flags.push('t');
        }
        if f.hot_root {
            flags.push('h');
        }
        if f.cold {
            flags.push('c');
        }
        if f.returns_result {
            flags.push('r');
        }
        if flags.is_empty() {
            flags.push('-');
        }
        out.push_str(&format!(
            "fn {} {} {} {} {} {}\n",
            f.line,
            f.col,
            flags,
            f.owner.as_deref().unwrap_or("-"),
            f.taint.as_deref().unwrap_or("-"),
            f.name
        ));
        for c in &f.calls {
            render_call(out, 'c', c.kind.tag(), c.line, c.col, &c.callee, &c.kind);
        }
        for x in &f.discards {
            render_call(out, 'x', x.kind.tag(), x.line, x.col, &x.callee, &x.kind);
        }
        for al in &f.allocs {
            out.push_str(&format!("a {} {} {}\n", al.line, al.col, json_escape(&al.what)));
        }
    }
    for e in &a.facts.events {
        out.push_str(&format!("e {} {} {}\n", e.line, e.col, e.name));
    }
    for u in &a.facts.event_uses {
        out.push_str(&format!("u {u}\n"));
    }
    out.push_str("end\n");
}

fn render_call(out: &mut String, rec: char, tag: char, line: u32, col: u32, callee: &str, kind: &CallKind) {
    match kind {
        CallKind::Qualified(q) => {
            out.push_str(&format!("{rec} {tag} {line} {col} {callee} {q}\n"))
        }
        _ => out.push_str(&format!("{rec} {tag} {line} {col} {callee}\n")),
    }
}

/// Undo [`json_escape`]. Cache files are machine-written; garbage in a
/// sequence decodes permissively (the digest key bounds the blast radius).
fn json_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('u') => {
                let hex: String = it.by_ref().take(4).collect();
                if let Some(ch) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                    out.push(ch);
                }
            }
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

fn parse(text: &str, want_fingerprint: &str) -> Option<Cache> {
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut h = header.split(' ');
    if h.next()? != "simlint-cache"
        || h.next()? != RULES_VERSION
        || h.next()? != want_fingerprint
        || h.next().is_some()
    {
        return None;
    }

    let mut entries = BTreeMap::new();
    let mut cur: Option<(String, String, FileAnalysis)> = None;
    for line in lines {
        let mut w = line.splitn(2, ' ');
        let rec = w.next()?;
        let rest = w.next().unwrap_or("");
        match rec {
            "file" => {
                if cur.is_some() {
                    return None; // previous entry missing its `end`
                }
                let (digest, rel) = rest.split_once(' ')?;
                let rel = json_unescape(rel);
                cur = Some((
                    rel.clone(),
                    digest.to_string(),
                    FileAnalysis {
                        rel,
                        local_diags: Vec::new(),
                        directives: Vec::new(),
                        facts: FileFacts::default(),
                    },
                ));
            }
            "end" => {
                let (rel, digest, a) = cur.take()?;
                entries.insert(rel, (digest, a));
            }
            "d" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.splitn(5, ' ');
                let rule = RuleId::from_name(f.next()?)?;
                let sev = match f.next()? {
                    "E" => Severity::Error,
                    "W" => Severity::Warning,
                    _ => return None,
                };
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let message = json_unescape(f.next().unwrap_or(""));
                a.local_diags.push(Diagnostic {
                    rule,
                    severity: sev,
                    file: a.rel.clone(),
                    line: line_no,
                    col,
                    message,
                });
            }
            "v" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.split(' ');
                let target: u32 = f.next()?.parse().ok()?;
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let mut rules = Vec::new();
                for name in f.next()?.split(',') {
                    rules.push(RuleId::from_name(name)?);
                }
                a.directives.push(Directive { target, rules, line: line_no, col });
            }
            "fn" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.split(' ');
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let flags = f.next()?;
                let owner = match f.next()? {
                    "-" => None,
                    o => Some(o.to_string()),
                };
                let taint = match f.next()? {
                    "-" => None,
                    t => Some(t.to_string()),
                };
                let name = f.next()?.to_string();
                a.facts.fns.push(FnFact {
                    name,
                    owner,
                    line: line_no,
                    col,
                    is_test: flags.contains('t'),
                    returns_result: flags.contains('r'),
                    hot_root: flags.contains('h'),
                    cold: flags.contains('c'),
                    taint,
                    calls: Vec::new(),
                    allocs: Vec::new(),
                    discards: Vec::new(),
                });
            }
            "c" | "x" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.split(' ');
                let tag = f.next()?;
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let callee = f.next()?.to_string();
                let kind = match tag {
                    "F" => CallKind::Free,
                    "M" => CallKind::Method,
                    "Q" => CallKind::Qualified(f.next()?.to_string()),
                    _ => return None,
                };
                let fun = a.facts.fns.last_mut()?;
                if rec == "c" {
                    fun.calls.push(CallFact { kind, callee, line: line_no, col });
                } else {
                    fun.discards.push(DiscardFact { kind, callee, line: line_no, col });
                }
            }
            "a" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.splitn(3, ' ');
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let what = json_unescape(f.next().unwrap_or(""));
                a.facts.fns.last_mut()?.allocs.push(AllocFact { line: line_no, col, what });
            }
            "e" => {
                let a = &mut cur.as_mut()?.2;
                let mut f = rest.split(' ');
                let line_no: u32 = f.next()?.parse().ok()?;
                let col: u32 = f.next()?.parse().ok()?;
                let name = f.next()?.to_string();
                a.facts.events.push(EventDef { name, line: line_no, col });
            }
            "u" => {
                cur.as_mut()?.2.facts.event_uses.push(rest.to_string());
            }
            _ => return None,
        }
    }
    if cur.is_some() {
        return None; // truncated final entry
    }
    Some(Cache { fingerprint: want_fingerprint.to_string(), entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine;

    fn sample_analysis() -> FileAnalysis {
        let cfg = Config::everything("/");
        let src = "\
// simlint: hot-root
pub fn pump() -> Result<(), String> {
    process::step(); // simlint: allow(hot-path-alloc): fixture \"quote\" test
    Ok(())
}
fn weird() { let v: Vec<u8> = x.collect(); }
pub enum Event { Send, Probe }
fn emit() -> Event { Event::Send }
fn clock() { let t = Instant::now(); }
";
        engine::analyze_rust(&cfg, "crates/x/src/lib.rs", src)
    }

    #[test]
    fn round_trip_preserves_analysis_exactly() {
        let a = sample_analysis();
        let cache = Cache::build("fp", &[a.clone()], &["0123abcd".to_string()]);
        let dir = std::env::temp_dir().join(format!("simlint-cache-rt-{}", std::process::id()));
        let path = dir.join("test.cache");
        cache.save(&path).expect("test: temp dir is writable");
        let loaded = Cache::load(&path, "fp");
        let b = loaded.get("crates/x/src/lib.rs", "0123abcd").expect("entry round-trips");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_digest_misses() {
        let a = sample_analysis();
        let cache = Cache::build("fp", &[a], &["0123abcd".to_string()]);
        assert!(cache.get("crates/x/src/lib.rs", "ffffffff").is_none());
        assert!(cache.get("crates/y/src/lib.rs", "0123abcd").is_none());
    }

    #[test]
    fn version_or_fingerprint_mismatch_discards() {
        let a = sample_analysis();
        let cache = Cache::build("fp", &[a], &["0123abcd".to_string()]);
        let dir = std::env::temp_dir().join(format!("simlint-cache-fp-{}", std::process::id()));
        let path = dir.join("test.cache");
        cache.save(&path).expect("test: temp dir is writable");
        assert!(Cache::load(&path, "other-fp").entries.is_empty());
        // Corrupt the version field: full discard, not an error.
        let text = std::fs::read_to_string(&path).expect("test: just written");
        std::fs::write(&path, text.replace(RULES_VERSION, "simlint-v0.0")).unwrap_or(());
        assert!(Cache::load(&path, "fp").entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_cache_discards() {
        let a = sample_analysis();
        let cache = Cache::build("fp", &[a], &["0123abcd".to_string()]);
        let dir = std::env::temp_dir().join(format!("simlint-cache-tr-{}", std::process::id()));
        let path = dir.join("test.cache");
        cache.save(&path).expect("test: temp dir is writable");
        let text = std::fs::read_to_string(&path).expect("test: just written");
        let cut = text.len() - "end\n".len();
        std::fs::write(&path, &text[..cut]).expect("test: rewrite");
        assert!(Cache::load(&path, "fp").entries.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_tracks_config_knobs() {
        let a = Config::everything("/");
        let mut b = Config::everything("/");
        assert_eq!(fingerprint(&a), fingerprint(&b));
        b.taint_scope.push("crates/extra".to_string());
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn unescape_round_trips() {
        for s in ["plain", "sp aces", "q\"uote", "back\\slash", "nl\nline", "tab\tx", "\u{1}ctl"] {
            assert_eq!(json_unescape(&json_escape(s)), s, "{s:?}");
        }
    }
}

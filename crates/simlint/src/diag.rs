//! Diagnostics, severities, and the stable rule registry.
//!
//! Every rule has a stable numeric ID (`SL001`…) and a human slug
//! (`determinism`, …). Suppression directives and the JSON output use both;
//! IDs never change meaning once shipped, so downstream tooling can match
//! on them across repo history.

use std::fmt;

/// Lint severity. `Error`s always fail the run; `Warning`s fail it under
/// `--deny-warnings` (which CI passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fails only under `--deny-warnings`.
    Warning,
    /// Always fails the run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The registered rules. The discriminants are stable: new rules append.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// SL000 — a suppression directive that suppressed nothing, named an
    /// unknown rule, or could not be parsed.
    UnusedAllow,
    /// SL001 — wall clocks, unseeded RNG, and hash-order iteration.
    Determinism,
    /// SL002 — bare `.unwrap()` / empty `.expect("")` in library crates.
    PanicPolicy,
    /// SL003 — `==` / `!=` on float expressions in sim/CCA code.
    FloatEq,
    /// SL004 — raw `as f64` / `as u64` unit casts in `netsim`.
    UnitCast,
    /// SL005 — wildcard arms in `match` over `trace::Event`.
    TraceExhaustiveness,
    /// SL006 — registry dependencies in workspace manifests.
    DepHygiene,
    /// SL007 — heap allocation in any fn reachable from a
    /// `// simlint: hot-root` annotated event-dispatch root.
    HotPathAlloc,
    /// SL008 — call edge into a fn that transitively reaches a wall clock
    /// or unseeded RNG (determinism taint does not stop at leaf allows).
    DeterminismTaint,
    /// SL009 — `trace::Event` variant never constructed by the simulator
    /// (dead instrumentation).
    DeadTraceEvent,
    /// SL010 — `Result` of a workspace fn discarded by an expression
    /// statement in a library crate.
    DiscardedResult,
}

/// Every rule, in ID order — the registry the CLI lists and the engine runs.
pub const ALL_RULES: &[RuleId] = &[
    RuleId::UnusedAllow,
    RuleId::Determinism,
    RuleId::PanicPolicy,
    RuleId::FloatEq,
    RuleId::UnitCast,
    RuleId::TraceExhaustiveness,
    RuleId::DepHygiene,
    RuleId::HotPathAlloc,
    RuleId::DeterminismTaint,
    RuleId::DeadTraceEvent,
    RuleId::DiscardedResult,
];

impl RuleId {
    /// Stable numeric ID (`SL004`).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::UnusedAllow => "SL000",
            RuleId::Determinism => "SL001",
            RuleId::PanicPolicy => "SL002",
            RuleId::FloatEq => "SL003",
            RuleId::UnitCast => "SL004",
            RuleId::TraceExhaustiveness => "SL005",
            RuleId::DepHygiene => "SL006",
            RuleId::HotPathAlloc => "SL007",
            RuleId::DeterminismTaint => "SL008",
            RuleId::DeadTraceEvent => "SL009",
            RuleId::DiscardedResult => "SL010",
        }
    }

    /// Human slug (`unit-cast`) — what `allow(…)` directives name.
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::UnusedAllow => "unused-allow",
            RuleId::Determinism => "determinism",
            RuleId::PanicPolicy => "panic-policy",
            RuleId::FloatEq => "float-eq",
            RuleId::UnitCast => "unit-cast",
            RuleId::TraceExhaustiveness => "trace-exhaustiveness",
            RuleId::DepHygiene => "dep-hygiene",
            RuleId::HotPathAlloc => "hot-path-alloc",
            RuleId::DeterminismTaint => "determinism-taint",
            RuleId::DeadTraceEvent => "dead-trace-event",
            RuleId::DiscardedResult => "discarded-result",
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::UnusedAllow => Severity::Error,
            RuleId::Determinism => Severity::Error,
            RuleId::PanicPolicy => Severity::Error,
            RuleId::FloatEq => Severity::Warning,
            RuleId::UnitCast => Severity::Warning,
            RuleId::TraceExhaustiveness => Severity::Error,
            RuleId::DepHygiene => Severity::Error,
            RuleId::HotPathAlloc => Severity::Warning,
            RuleId::DeterminismTaint => Severity::Error,
            RuleId::DeadTraceEvent => Severity::Warning,
            RuleId::DiscardedResult => Severity::Warning,
        }
    }

    /// One-line description (the CLI's `--rules` listing).
    pub fn describe(self) -> &'static str {
        match self {
            RuleId::UnusedAllow => "suppression directive that suppresses nothing",
            RuleId::Determinism => {
                "wall clock, unseeded RNG, or hash-order iteration in deterministic code"
            }
            RuleId::PanicPolicy => {
                "bare .unwrap() or empty .expect(\"\") in a library crate (document the invariant)"
            }
            RuleId::FloatEq => "== or != on a float expression in sim/CCA code",
            RuleId::UnitCast => {
                "raw `as f64`/`as u64` on a time/byte quantity in netsim (use a named helper)"
            }
            RuleId::TraceExhaustiveness => {
                "wildcard arm in a match over trace::Event (new events would be silently dropped)"
            }
            RuleId::DepHygiene => "registry dependency in a workspace manifest (must be path-only)",
            RuleId::HotPathAlloc => {
                "heap allocation (Vec::new, vec![], Box::new, .collect(), .to_vec()) in a fn \
                 reachable from a `// simlint: hot-root` annotated event-dispatch root"
            }
            RuleId::DeterminismTaint => {
                "call into a fn that transitively reaches a wall clock or unseeded RNG \
                 (a leaf allow(determinism) does not bless the callers)"
            }
            RuleId::DeadTraceEvent => {
                "trace::Event variant never constructed by the simulator (dead instrumentation)"
            }
            RuleId::DiscardedResult => {
                "expression statement discards the Result of a workspace fn in a library crate"
            }
        }
    }

    /// Resolve a directive name: accepts the slug or the numeric ID.
    pub fn from_name(name: &str) -> Option<RuleId> {
        ALL_RULES
            .iter()
            .copied()
            .find(|r| r.slug() == name || r.id().eq_ignore_ascii_case(name))
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity (usually `rule.severity()`).
    pub severity: Severity,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What's wrong and what to do instead.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic at a token position with the rule's default severity.
    pub fn new(rule: RuleId, file: &str, line: u32, col: u32, message: String) -> Diagnostic {
        Diagnostic { rule, severity: rule.severity(), file: file.to_string(), line, col, message }
    }

    /// Human one-liner: `file:line:col: severity[SLnnn/slug]: message`.
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {}[{}/{}]: {}",
            self.file,
            self.line,
            self.col,
            self.severity,
            self.rule.id(),
            self.rule.slug(),
            self.message
        )
    }

    /// One JSON object (no trailing newline) — the JSON-lines output format.
    /// Hand-rolled like the rest of the workspace: there is no serde.
    pub fn render_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"slug\":\"{}\",\"severity\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.rule.id(),
            self.rule.slug(),
            self.severity,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_and_unique() {
        let ids: Vec<&str> = ALL_RULES.iter().map(|r| r.id()).collect();
        assert_eq!(
            ids,
            vec![
                "SL000", "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007", "SL008",
                "SL009", "SL010"
            ]
        );
        let slugs: std::collections::BTreeSet<&str> = ALL_RULES.iter().map(|r| r.slug()).collect();
        assert_eq!(slugs.len(), ALL_RULES.len());
    }

    #[test]
    fn from_name_accepts_slug_and_id() {
        assert_eq!(RuleId::from_name("unit-cast"), Some(RuleId::UnitCast));
        assert_eq!(RuleId::from_name("SL004"), Some(RuleId::UnitCast));
        assert_eq!(RuleId::from_name("sl001"), Some(RuleId::Determinism));
        assert_eq!(RuleId::from_name("nope"), None);
    }

    #[test]
    fn render_formats() {
        let d = Diagnostic::new(RuleId::PanicPolicy, "crates/x/src/a.rs", 3, 7, "bare .unwrap()".into());
        assert_eq!(
            d.render_human(),
            "crates/x/src/a.rs:3:7: error[SL002/panic-policy]: bare .unwrap()"
        );
        let j = d.render_json();
        assert!(j.starts_with("{\"rule\":\"SL002\""), "{j}");
        assert!(j.contains("\"line\":3"), "{j}");
        assert!(j.ends_with('}'), "{j}");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}

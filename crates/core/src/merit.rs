//! §6.3's figure of merit: the rate range `µ₊/µ₋` a CCA can support while
//! staying `s`-fair under jitter bound `D` and maximum tolerable delay
//! `Rmax`.
//!
//! * Vegas family (`µ(d) = α/(d − Rm)`, Eq. 1):
//!   `µ₊/µ₋ = (Rmax − Rm)/D · (1 − 1/s) = O(Rmax/D)`.
//! * BBR's cwnd-limited family (`µ(d) = α/(d − 2Rm)`): same shape with
//!   `Rmax − 2Rm` in the numerator.
//! * Exponential mapping (`µ(d) = µ₋·s^((Rmax−d)/D)`, Eq. 2):
//!   `µ₊/µ₋ = s^((Rmax − Rm − D)/D) = O(s^(Rmax/D))` — exponentially
//!   larger. The paper's example: `D` = 10 ms, `Rmax` = 100 ms, `s` = 2 →
//!   ≈ 2¹⁰ ≈ 10³; `s` = 4 → ≈ 10⁶.

use simcore::units::Dur;

/// Eq. 1: the Vegas-family figure of merit.
///
/// `(rmax − rm)/d · (1 − 1/s)`, using the paper's convention that the
/// denominator-delay is measured from the family's delay floor (`Rm` for
/// Vegas/FAST/Copa).
pub fn vegas_family_merit(rmax: Dur, rm: Dur, d: Dur, s: f64) -> f64 {
    assert!(s > 1.0);
    assert!(rmax > rm);
    ((rmax.as_secs_f64() - rm.as_secs_f64()) / d.as_secs_f64()) * (1.0 - 1.0 / s)
}

/// The BBR cwnd-limited variant of Eq. 1 (delay floor `2·Rm`).
pub fn bbr_family_merit(rmax: Dur, rm: Dur, d: Dur, s: f64) -> f64 {
    assert!(s > 1.0);
    let floor = 2.0 * rm.as_secs_f64();
    assert!(rmax.as_secs_f64() > floor, "Rmax must exceed 2Rm");
    ((rmax.as_secs_f64() - floor) / d.as_secs_f64()) * (1.0 - 1.0 / s)
}

/// Eq. 2: the exponential mapping's figure of merit
/// `s^((Rmax − Rm − D)/D)`.
pub fn exponential_merit(rmax: Dur, rm: Dur, d: Dur, s: f64) -> f64 {
    assert!(s > 1.0);
    assert!(rmax > rm);
    let expo = (rmax.as_secs_f64() - rm.as_secs_f64() - d.as_secs_f64()) / d.as_secs_f64();
    s.powf(expo)
}

/// A row of the §6.3 comparison table.
#[derive(Clone, Copy, Debug)]
pub struct MeritRow {
    /// Jitter bound `D`.
    pub d: Dur,
    /// Tolerable unfairness `s`.
    pub s: f64,
    /// Max tolerable delay `Rmax`.
    pub rmax: Dur,
    /// Propagation RTT `Rm`.
    pub rm: Dur,
    /// Eq. 1's merit.
    pub vegas: f64,
    /// Eq. 2's merit.
    pub exponential: f64,
}

/// Build the comparison table for a set of `(D, s)` pairs.
pub fn merit_table(rmax: Dur, rm: Dur, cases: &[(Dur, f64)]) -> Vec<MeritRow> {
    cases
        .iter()
        .map(|&(d, s)| MeritRow {
            d,
            s,
            rmax,
            rm,
            vegas: vegas_family_merit(rmax, rm, d, s),
            exponential: exponential_merit(rmax, rm, d, s),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Dur {
        Dur::from_millis(v)
    }

    #[test]
    fn paper_example_s2() {
        // D = 10 ms, s = 2, Rmax = 100 ms, Rm ≈ 0 (the paper's 2¹⁰ uses
        // Rmax/D = 10 exponent before subtracting the D term).
        let m = exponential_merit(ms(100), ms(0), ms(10), 2.0);
        assert!((m - 2.0f64.powi(9)).abs() < 1e-6, "m={m}");
    }

    #[test]
    fn paper_example_s4() {
        let m = exponential_merit(ms(100), ms(0), ms(10), 4.0);
        assert!((m - 4.0f64.powi(9)).abs() < 1e-3, "m={m}");
        assert!(m > 2.6e5); // ≈ 10⁵–10⁶, the paper's "≈ 10⁶" ballpark
    }

    #[test]
    fn vegas_merit_is_linear_in_rmax_over_d() {
        let m = vegas_family_merit(ms(100), ms(0), ms(10), 2.0);
        assert!((m - 5.0).abs() < 1e-9); // (100/10)·(1/2)
        let m2 = vegas_family_merit(ms(200), ms(0), ms(10), 2.0);
        assert!((m2 - 10.0).abs() < 1e-9);
    }

    #[test]
    fn exponential_beats_vegas_exponentially() {
        let rm = ms(10);
        let rmax = ms(110);
        for &(d_ms, s) in &[(10u64, 2.0), (5, 2.0), (10, 4.0)] {
            let v = vegas_family_merit(rmax, rm, ms(d_ms), s);
            let e = exponential_merit(rmax, rm, ms(d_ms), s);
            assert!(e > 10.0 * v, "d={d_ms} s={s}: e={e} v={v}");
        }
    }

    #[test]
    fn bbr_merit_uses_two_rm_floor() {
        let v = vegas_family_merit(ms(100), ms(10), ms(10), 2.0);
        let b = bbr_family_merit(ms(100), ms(10), ms(10), 2.0);
        assert!(b < v); // less headroom above 2Rm than above Rm
        assert!((b - (0.080 / 0.010) * 0.5).abs() < 1e-9);
    }

    #[test]
    fn table_rows() {
        let rows = merit_table(ms(100), ms(0), &[(ms(10), 2.0), (ms(10), 4.0)]);
        assert_eq!(rows.len(), 2);
        assert!(rows[1].exponential > rows[0].exponential);
    }
}

//! Theorem 1, end to end: *starvation is inevitable for delay-convergent
//! CCAs* when the non-congestive delay bound exceeds `2·δ_max`.
//!
//! The pipeline follows the proof's three steps:
//!
//! 1. **Pigeonhole** ([`crate::pigeonhole`]) — find `C₁, C₂` a factor
//!    ≥ `s/f` apart whose converged delay bands nearly coincide.
//! 2. **Trajectories** — run the CCA alone on ideal paths of rates `C₁`
//!    and `C₂`, find the convergence instants `T₁, T₂`, and time-shift the
//!    recorded delay trajectories (`d̄ᵢ(t) = dᵢ(t + Tᵢ)`, Figure 5). The
//!    final CCA states become the 2-flow scenario's initial states.
//! 3. **Emulation** ([`crate::emulation`]) — compute `d*(t)` and the jitter
//!    schedules, verify feasibility, then *actually run* the 2-flow
//!    scenario: a shared link of rate `C₁+C₂`, warm-started with `d*(0)`
//!    of queueing, with each flow's jitter element adversarially holding
//!    packets to reproduce `d̄ᵢ` (the [`netsim::Jitter::TargetRtt`]
//!    policy). The flows — identical algorithms on paths with equal `Rm` —
//!    then converge to throughputs ≥ `s` apart.

use crate::convergence::analyze_convergence;
use crate::emulation::{plan_emulation, EmulationPlan};
use crate::pigeonhole::{pigeonhole_search, PigeonholeConfig, PigeonholeResult};
use crate::runner::{run_ideal_path, RunSpec};
use cca::CcaFactory;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate};

/// Configuration for the full Theorem 1 construction.
#[derive(Clone, Copy, Debug)]
pub struct Theorem1Config {
    /// Efficiency bound `f` assumed of the CCA.
    pub f: f64,
    /// Target throughput ratio `s`.
    pub s: f64,
    /// Base rate `λ` for the pigeonhole sweep.
    pub lambda: Rate,
    /// Propagation RTT `Rm` (same for both flows — starvation without RTT
    /// unfairness).
    pub rm: Dur,
    /// Pigeonhole sweep points.
    pub sweep_steps: usize,
    /// Duration of each single-flow recording run.
    pub record_duration: Dur,
    /// Duration of the final 2-flow emulated run.
    pub emulate_duration: Dur,
}

impl Theorem1Config {
    /// A configuration that completes quickly (used by tests/benches):
    /// `f = 0.5`, `s = 2`, λ = 8 Mbit/s, `Rm` = 40 ms.
    pub fn quick() -> Theorem1Config {
        Theorem1Config {
            f: 0.5,
            s: 2.0,
            lambda: Rate::from_mbps(8.0),
            rm: Dur::from_millis(40),
            sweep_steps: 3,
            record_duration: Dur::from_secs(25),
            emulate_duration: Dur::from_secs(20),
        }
    }
}

/// Everything the construction produced.
pub struct Theorem1Report {
    /// Step 1's output.
    pub pigeonhole: PigeonholeResult,
    /// Step 2's time-shifted trajectories (Figure 5's bold segments).
    pub d1: TimeSeries,
    /// Flow 2's trajectory.
    pub d2: TimeSeries,
    /// Step 3's schedule (Figure 6).
    pub plan: EmulationPlan,
    /// Measured throughput of the slow flow in the 2-flow run, Mbit/s.
    pub x1_mbps: f64,
    /// Measured throughput of the fast flow, Mbit/s.
    pub x2_mbps: f64,
    /// Packets whose jitter had to be clamped outside `[0, D]` (emulation
    /// error of the packet-level run; 0 = exact).
    pub clamped_packets: u64,
    /// Single-flow throughputs on the ideal paths (sanity reference).
    pub solo1_mbps: f64,
    /// Single-flow throughput at `C₂`.
    pub solo2_mbps: f64,
    /// Which case of the proof the construction used: Case 1 keeps the
    /// shared queue at `d*(t)`; Case 2 (when the weighted average dips
    /// below `Rm`) uses a much faster link and lets the jitter element do
    /// all the emulation.
    pub used_case2: bool,
}

impl Theorem1Report {
    /// The achieved throughput ratio `x₂/x₁`.
    pub fn ratio(&self) -> f64 {
        if self.x1_mbps <= 0.0 {
            f64::INFINITY
        } else {
            self.x2_mbps / self.x1_mbps
        }
    }

    /// Whether starvation at level `s` was demonstrated.
    pub fn starved(&self, s: f64) -> bool {
        self.ratio() >= s
    }
}

/// Run the full construction. Returns `None` if the pigeonhole search found
/// no converging pair (the CCA did not behave delay-convergently).
pub fn run_theorem1(factory: &CcaFactory, cfg: Theorem1Config) -> Option<Theorem1Report> {
    // ---- Step 1: pigeonhole ----
    let ph = pigeonhole_search(
        factory,
        PigeonholeConfig {
            f: cfg.f,
            s: cfg.s,
            lambda: cfg.lambda,
            rm: cfg.rm,
            steps: cfg.sweep_steps,
            duration: cfg.record_duration,
        },
    )?;

    // ---- Step 2: record trajectories and snapshot converged state ----
    let run1 = run_ideal_path(factory(), RunSpec::new(ph.c1, cfg.rm, cfg.record_duration));
    let run2 = run_ideal_path(factory(), RunSpec::new(ph.c2, cfg.rm, cfg.record_duration));
    let conv1 = analyze_convergence(&run1.rtt, 0.5, 1e-4)?;
    let conv2 = analyze_convergence(&run2.rtt, 0.5, 1e-4)?;
    let d1 = run1.rtt.shifted_from(conv1.t_converge);
    let d2 = run2.rtt.shifted_from(conv2.t_converge);

    // ---- Step 3: plan the emulation ----
    let eps = ph.working_epsilon();
    let tick = Dur::from_millis(1);
    let n = (cfg.emulate_duration.as_nanos() / tick.as_nanos()) as usize;
    let plan = plan_emulation(
        &d1,
        &d2,
        ph.c1.bytes_per_sec(),
        ph.c2.bytes_per_sec(),
        ph.delta_max,
        eps,
        cfg.rm,
        tick,
        n,
    );
    let d_bound = Dur::from_secs_f64(plan.d_bound);

    // Build the 2-flow scenario with converged CCA states and adversarial
    // jitter elements targeting d̄ᵢ. Case 1 runs on the shared link C₁+C₂
    // with the queue warm-started to d*(0); Case 2 (d* would dip below Rm)
    // runs on a much faster link where queueing is negligible and the
    // jitter element reproduces the trajectories alone — the delays then
    // satisfy d̄ᵢ ≤ Rm + D, so η ∈ [0, D] still holds.
    let c_total = ph.c1 + ph.c2;
    let used_case2 = plan.needs_case2();
    let link_rate = if used_case2 {
        c_total.mul_f64(8.0)
    } else {
        c_total
    };
    let link = LinkConfig::ample_buffer(link_rate);
    let mk_flow = |cca: cca::BoxCca, target: &TimeSeries| {
        FlowConfig::bulk(cca, cfg.rm).with_jitter(Jitter::TargetRtt {
            target_rtt: target.clone(),
            max: d_bound,
        })
    };
    let flow1 = mk_flow(run1.final_cca.clone_box(), &d1);
    let flow2 = mk_flow(run2.final_cca.clone_box(), &d2);
    let mut net = Network::new(SimConfig::new(
        link,
        vec![flow1, flow2],
        cfg.emulate_duration,
    ));

    if !used_case2 {
        // Warm start: create d*(0)−Rm of queueing, minus the windows the
        // two senders will blast into the empty pipe at t = 0.
        let q0_bytes = (plan.initial_queue_delay.max(0.0) * c_total.bytes_per_sec()) as u64;
        let burst = run1.final_cca.cwnd() + run2.final_cca.cwnd();
        net.prefill_queue(q0_bytes.saturating_sub(burst), 1500);
    }

    let result = net.run();
    let x1 = result.flows[0].throughput_at(result.end).mbps();
    let x2 = result.flows[1].throughput_at(result.end).mbps();
    Some(Theorem1Report {
        pigeonhole: ph,
        d1,
        d2,
        plan,
        x1_mbps: x1,
        x2_mbps: x2,
        clamped_packets: result.total_jitter_clamps(),
        solo1_mbps: run1.throughput.mbps(),
        solo2_mbps: run2.throughput.mbps(),
        used_case2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::factory;

    #[test]
    fn vegas_starves_under_construction() {
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let report = run_theorem1(&f, Theorem1Config::quick()).expect("construction failed");
        // The two ideal-path runs must differ by ≥ s/f in rate...
        assert!(report.solo2_mbps / report.solo1_mbps >= 3.0);
        // ...and the emulated 2-flow run must reproduce a ratio ≥ s = 2
        // (the paper demonstrates ~10:1; our cleaner emulator often exceeds
        // the minimum by a lot).
        assert!(
            report.starved(2.0),
            "x1={} x2={} ratio={}",
            report.x1_mbps,
            report.x2_mbps,
            report.ratio()
        );
    }
}

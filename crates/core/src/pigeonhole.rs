//! Step 1 of Theorem 1's proof: the pigeonhole search (Figure 4).
//!
//! Consider link rates `λᵢ = λ·(s/f)^i`. Each has a converged delay band of
//! width < `δ_max` inside the fixed interval `[Rm, d̂_max]`. Only finitely
//! many disjoint `ε`-intervals fit in `[Rm, d̂_max]`, so some pair of rates —
//! a factor ≥ `s/f` apart — must have `d_max` values within `ε` of each
//! other. Those are the `C₁, C₂` used to build the starvation scenario.
//!
//! Empirically we profile the CCA at each `λᵢ` and return the pair with the
//! closest `d_max` values.

use crate::convergence::ConvergenceReport;
use crate::profiler::profile_rate_delay;
use cca::CcaFactory;
use simcore::units::{Dur, Rate};

/// Configuration for the pigeonhole search.
#[derive(Clone, Copy, Debug)]
pub struct PigeonholeConfig {
    /// Efficiency bound `f` (Definition 4).
    pub f: f64,
    /// Target unfairness `s`.
    pub s: f64,
    /// Base rate `λ` — the smallest rate probed.
    pub lambda: Rate,
    /// Propagation RTT `Rm`.
    pub rm: Dur,
    /// Number of rates `λᵢ` probed.
    pub steps: usize,
    /// Per-run duration.
    pub duration: Dur,
}

/// Outcome of the search.
#[derive(Clone, Debug)]
pub struct PigeonholeResult {
    /// The smaller rate `C₁`.
    pub c1: Rate,
    /// The larger rate `C₂ ≥ (s/f)·C₁`.
    pub c2: Rate,
    /// Convergence report at `C₁`.
    pub rep1: ConvergenceReport,
    /// Convergence report at `C₂`.
    pub rep2: ConvergenceReport,
    /// `ε`: the observed gap `|d_max(C₁) − d_max(C₂)|`, seconds.
    pub epsilon: f64,
    /// `δ_max` over the whole sweep, seconds.
    pub delta_max: f64,
    /// The full sweep (for Figure 4's visualization).
    pub sweep: Vec<(Rate, ConvergenceReport)>,
}

impl PigeonholeResult {
    /// The jitter bound `D = 2·(δ_max + ε′)` the construction needs, where
    /// `ε′` is the working epsilon (at least the observed gap plus margin).
    pub fn required_d(&self) -> f64 {
        2.0 * (self.delta_max + self.working_epsilon())
    }

    /// The `ε` used in the construction: the observed gap widened by a
    /// small margin to absorb packet quantization.
    pub fn working_epsilon(&self) -> f64 {
        (self.epsilon + 1e-4).max(self.delta_max * 0.1)
    }
}

/// Run the pigeonhole search.
///
/// Returns `None` if fewer than two sweep points converged (a CCA that
/// never converges is not delay-convergent — Theorem 1 doesn't apply).
pub fn pigeonhole_search(factory: &CcaFactory, cfg: PigeonholeConfig) -> Option<PigeonholeResult> {
    assert!(cfg.s >= 1.0 && cfg.f > 0.0 && cfg.f <= 1.0);
    assert!(cfg.steps >= 2);
    let ratio = cfg.s / cfg.f;
    let rates: Vec<Rate> = (0..cfg.steps)
        .map(|i| Rate::from_bytes_per_sec(cfg.lambda.bytes_per_sec() * ratio.powi(i as i32)))
        .collect();
    let points = profile_rate_delay(factory, &rates, cfg.rm, cfg.duration);
    if points.len() < 2 {
        return None;
    }
    let sweep: Vec<(Rate, ConvergenceReport)> =
        points.iter().map(|p| (p.rate, p.convergence)).collect();
    let delta_max = sweep
        .iter()
        .map(|(_, r)| r.delta())
        .fold(0.0f64, f64::max);

    // Closest d_max pair with i < j (rates are sorted ascending, so any
    // pair is ≥ s/f apart).
    let mut best: Option<(usize, usize, f64)> = None;
    for i in 0..sweep.len() {
        for j in (i + 1)..sweep.len() {
            let gap = (sweep[i].1.d_max - sweep[j].1.d_max).abs();
            if best.is_none_or(|(_, _, g)| gap < g) {
                best = Some((i, j, gap));
            }
        }
    }
    let (i, j, epsilon) = best?;
    Some(PigeonholeResult {
        c1: sweep[i].0,
        c2: sweep[j].0,
        rep1: sweep[i].1,
        rep2: sweep[j].1,
        epsilon,
        delta_max,
        sweep,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::factory;

    #[test]
    fn finds_close_delay_pair_for_vegas() {
        // Vegas: d_max(C) = Rm + O(1/C); large rates have nearly equal
        // d_max, so the pigeonhole must find a tight pair.
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let cfg = PigeonholeConfig {
            f: 0.5,
            s: 2.0,
            lambda: Rate::from_mbps(8.0),
            rm: Dur::from_millis(40),
            steps: 3, // 8, 32, 128 Mbit/s
            duration: Dur::from_secs(20),
        };
        let r = pigeonhole_search(&f, cfg).expect("search failed");
        assert!(r.c2.bytes_per_sec() / r.c1.bytes_per_sec() >= 3.9);
        // Vegas queues ≤ 4 pkts: at ≥ 32 Mbit/s that's ≤ 1.5 ms, so the gap
        // between d_max values must be small.
        assert!(r.epsilon < 0.004, "epsilon={}", r.epsilon);
        assert!(r.delta_max < 0.01, "delta_max={}", r.delta_max);
        assert!(r.required_d() < 0.025);
        assert_eq!(r.sweep.len(), 3);
    }
}

//! Definitions 2–4 of the paper: `s`-fairness, starvation, `f`-efficiency.

use netsim::FlowMetrics;
use simcore::units::{Dur, Rate, Time};

/// Result of an `s`-fairness check over a two-flow run (Definition 2).
#[derive(Clone, Copy, Debug)]
pub struct SFairnessReport {
    /// The earliest sampled time after which the throughput ratio stayed
    /// below `s` (`None` if it never did — evidence of `s`-unfairness over
    /// the horizon tested).
    pub fair_after: Option<Time>,
    /// The throughput ratio at the end of the run.
    pub final_ratio: f64,
    /// The largest ratio observed over the sampled suffix.
    pub max_ratio_tail: f64,
}

/// Check Definition 2 empirically on two flows: does there exist a time `t`
/// after which `max/min` throughput stays `< s`? Samples the ratio on a
/// grid of `n_samples` points.
pub fn check_s_fairness(
    a: &FlowMetrics,
    b: &FlowMetrics,
    end: Time,
    s: f64,
    n_samples: usize,
) -> SFairnessReport {
    assert!(s >= 1.0 && n_samples >= 2);
    let start = a.start.max(b.start);
    let span = end.since(start);
    let ratio_at = |t: Time| -> f64 {
        let ta = a.throughput_at(t).bytes_per_sec();
        let tb = b.throughput_at(t).bytes_per_sec();
        let (hi, lo) = if ta >= tb { (ta, tb) } else { (tb, ta) };
        if lo <= 0.0 {
            f64::INFINITY
        } else {
            hi / lo
        }
    };
    let mut fair_after = None;
    let mut max_tail = 0.0f64;
    // Walk backwards: find the longest suffix where ratio < s throughout.
    let mut suffix_ok = true;
    let mut times: Vec<Time> = (1..=n_samples)
        .map(|i| start + Dur((span.as_nanos() as f64 * i as f64 / n_samples as f64) as u64))
        .collect();
    times.dedup();
    for &t in times.iter().rev() {
        let r = ratio_at(t);
        if suffix_ok {
            if r < s {
                fair_after = Some(t);
                max_tail = max_tail.max(r);
            } else {
                suffix_ok = false;
            }
        }
    }
    SFairnessReport {
        fair_after,
        final_ratio: ratio_at(end),
        max_ratio_tail: max_tail,
    }
}

/// Result of an `f`-efficiency check (Definition 4).
#[derive(Clone, Copy, Debug)]
pub struct FEfficiencyReport {
    /// The best efficiency `delivered(t')/(C·t')` over sampled `t'` in the
    /// latter half of the run (Definition 4 asks this to reach `f`
    /// infinitely often; over a finite run we take the tail's supremum).
    pub best_tail_efficiency: f64,
}

/// Check Definition 4 empirically: over the latter half of an ideal-path
/// run, does `bytes delivered in [0, t'] / (C·t')` reach `f`?
pub fn check_f_efficiency(
    m: &FlowMetrics,
    link_rate: Rate,
    end: Time,
    n_samples: usize,
) -> FEfficiencyReport {
    assert!(n_samples >= 1);
    let start = m.start;
    let half = start + Dur(end.since(start).as_nanos() / 2);
    let mut best = 0.0f64;
    for i in 0..n_samples {
        let t = half
            + Dur(
                (end.since(half).as_nanos() as f64 * i as f64 / n_samples.max(1) as f64) as u64,
            );
        if t <= start {
            continue;
        }
        let eff = m.throughput_at(t).bytes_per_sec() / link_rate.bytes_per_sec();
        best = best.max(eff);
    }
    FEfficiencyReport {
        best_tail_efficiency: best,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(rate_mbps: f64, end_s: u64) -> FlowMetrics {
        let mut m = FlowMetrics::new(Time::ZERO);
        let bps = rate_mbps * 1e6 / 8.0;
        for s in 1..=end_s {
            m.delivered.push(Time::from_secs(s), bps * s as f64);
        }
        m
    }

    #[test]
    fn equal_flows_are_s_fair() {
        let a = flow(10.0, 10);
        let b = flow(10.0, 10);
        let r = check_s_fairness(&a, &b, Time::from_secs(10), 2.0, 20);
        assert!(r.fair_after.is_some());
        assert!((r.final_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ten_to_one_flows_fail_2_fairness() {
        let a = flow(100.0, 10);
        let b = flow(10.0, 10);
        let r = check_s_fairness(&a, &b, Time::from_secs(10), 2.0, 20);
        assert!(r.fair_after.is_none());
        assert!((r.final_ratio - 10.0).abs() < 1e-9);
    }

    #[test]
    fn ten_to_one_flows_pass_20_fairness() {
        let a = flow(100.0, 10);
        let b = flow(10.0, 10);
        let r = check_s_fairness(&a, &b, Time::from_secs(10), 20.0, 20);
        assert!(r.fair_after.is_some());
    }

    #[test]
    fn zero_flow_is_starved_at_any_s() {
        // One flow delivers nothing: ratio is ∞ — not s-fair for any s.
        let a = flow(100.0, 10);
        let b = FlowMetrics::new(Time::ZERO);
        let r = check_s_fairness(&a, &b, Time::from_secs(10), 1e12, 20);
        assert!(r.fair_after.is_none());
        assert!(r.final_ratio.is_infinite());
    }

    #[test]
    fn f_efficiency_of_full_flow() {
        let m = flow(10.0, 10);
        let r = check_f_efficiency(&m, Rate::from_mbps(10.0), Time::from_secs(10), 10);
        assert!(r.best_tail_efficiency > 0.95, "{}", r.best_tail_efficiency);
    }

    #[test]
    fn f_efficiency_of_idle_flow() {
        let m = FlowMetrics::new(Time::ZERO);
        let r = check_f_efficiency(&m, Rate::from_mbps(10.0), Time::from_secs(10), 10);
        assert_eq!(r.best_tail_efficiency, 0.0);
    }
}

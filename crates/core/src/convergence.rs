//! Delay-convergence detection (Definition 1, Figure 1).
//!
//! A CCA is *delay-convergent* if, run alone on an ideal path, there is a
//! time `T` after which its RTT stays inside a bounded interval
//! `[d_min(C), d_max(C)]`. This module measures that interval empirically:
//! take the delay band the trajectory occupies over its trailing portion,
//! widen it by a small tolerance, and find the earliest time after which
//! the trajectory never leaves the band.

use simcore::series::TimeSeries;
use simcore::units::{Dur, Time};

/// Measured convergence behaviour of one ideal-path run.
#[derive(Clone, Copy, Debug)]
pub struct ConvergenceReport {
    /// Earliest time after which all RTT samples stay within the band.
    pub t_converge: Time,
    /// `d_min(C)`: least RTT over the converged region, seconds.
    pub d_min: f64,
    /// `d_max(C)`: greatest RTT over the converged region, seconds.
    pub d_max: f64,
}

impl ConvergenceReport {
    /// `δ(C) = d_max(C) − d_min(C)`, seconds.
    pub fn delta(&self) -> f64 {
        self.d_max - self.d_min
    }

    /// `δ(C)` as a [`Dur`].
    pub fn delta_dur(&self) -> Dur {
        Dur::from_secs_f64(self.delta())
    }
}

/// Analyze an RTT trajectory.
///
/// * `tail_fraction` — the trailing share of the run treated as "surely
///   converged" when measuring the band (0.5 is robust).
/// * `tolerance` — widening applied to the band before locating
///   `t_converge`, in seconds (absorbs one-packet quantization).
///
/// Returns `None` if the series is empty or the trajectory still leaves
/// the band in the final `tail_fraction` (i.e. no convergence detected).
pub fn analyze_convergence(
    rtt: &TimeSeries,
    tail_fraction: f64,
    tolerance: f64,
) -> Option<ConvergenceReport> {
    assert!(tail_fraction > 0.0 && tail_fraction <= 1.0);
    let (first_t, _) = rtt.first()?;
    let end = rtt.end_time();
    if end <= first_t {
        return None;
    }
    let span = end.since(first_t);
    let tail_start = end - Dur((span.as_nanos() as f64 * tail_fraction) as u64);
    let d_min = rtt.min_in(tail_start, end)?;
    let d_max = rtt.max_in(tail_start, end)?;

    let lo = d_min - tolerance;
    let hi = d_max + tolerance;
    // Earliest suffix entirely inside [lo, hi]: scan backwards for the last
    // violation.
    let mut t_converge = first_t;
    for &(t, v) in rtt.points().iter().rev() {
        if v < lo || v > hi {
            t_converge = t + Dur(1); // just after the last violation
            break;
        }
    }
    Some(ConvergenceReport {
        t_converge,
        d_min,
        d_max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(points: &[(u64, f64)]) -> TimeSeries {
        let mut s = TimeSeries::new();
        for &(ms, v) in points {
            s.push(Time::from_millis(ms), v);
        }
        s
    }

    #[test]
    fn detects_step_convergence() {
        // Ramp for 1 s, then settle at 50±1 ms.
        let mut pts = Vec::new();
        for i in 0..100u64 {
            pts.push((i * 10, 0.100 - (i as f64) * 0.0005));
        }
        for i in 100..400u64 {
            pts.push((i * 10, 0.050 + if i % 2 == 0 { 0.001 } else { 0.0 }));
        }
        let r = analyze_convergence(&series(&pts), 0.5, 1e-4).unwrap();
        assert!((r.d_min - 0.050).abs() < 1e-9);
        assert!((r.d_max - 0.051).abs() < 1e-9);
        assert!((r.delta() - 0.001).abs() < 1e-9);
        // Convergence detected somewhere in the ramp's end.
        assert!(r.t_converge <= Time::from_millis(1100), "{:?}", r.t_converge);
        assert!(r.t_converge > Time::from_millis(500));
    }

    #[test]
    fn flat_series_converges_at_start() {
        let pts: Vec<(u64, f64)> = (0..100).map(|i| (i * 10, 0.040)).collect();
        let r = analyze_convergence(&series(&pts), 0.5, 1e-6).unwrap();
        assert_eq!(r.t_converge, Time::ZERO);
        assert_eq!(r.delta(), 0.0);
    }

    #[test]
    fn empty_series_is_none() {
        assert!(analyze_convergence(&TimeSeries::new(), 0.5, 1e-6).is_none());
    }

    #[test]
    fn oscillation_width_measured() {
        // Sawtooth between 60 and 70 ms forever: converged immediately,
        // delta = 10 ms.
        let pts: Vec<(u64, f64)> = (0..200)
            .map(|i| (i * 10, 0.060 + 0.010 * ((i % 10) as f64) / 9.0))
            .collect();
        let r = analyze_convergence(&series(&pts), 0.5, 1e-6).unwrap();
        assert!((r.delta() - 0.010).abs() < 1e-9);
    }

    #[test]
    fn late_spike_delays_convergence_time() {
        let mut pts: Vec<(u64, f64)> = (0..300).map(|i| (i * 10, 0.050)).collect();
        pts[100] = (1000, 0.200); // spike at 1 s
        let r = analyze_convergence(&series(&pts), 0.5, 1e-6).unwrap();
        assert!(r.t_converge > Time::from_millis(1000));
    }
}

//! Single-flow ideal-path runs — the setting of Definition 1.
//!
//! An *ideal path* has a constant bottleneck rate `C`, a fixed propagation
//! RTT `Rm`, an ample buffer, and **zero** non-congestive delay. Every
//! theorem construction starts by running the CCA alone on ideal paths and
//! recording its delay trajectory `d(t)` and rate trajectory `r(t)`
//! (Figure 5's bold curves).

use cca::BoxCca;
use netsim::Network;
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate, Time};

/// Specification for an ideal-path run.
///
/// This is [`netsim::PathSpec`] under its historical name: the same spec
/// type `testkit::harness`'s fixtures expand, constructed here with the
/// impairment fields (jitter, loss) left at zero — Definition 1's ideal
/// path. One spec type, one expansion into `LinkConfig`/`FlowConfig`.
pub type RunSpec = netsim::PathSpec;

/// Results of an ideal-path run.
pub struct IdealRun {
    /// The spec that produced it.
    pub spec: RunSpec,
    /// RTT samples over time (`d(t)`), seconds.
    pub rtt: TimeSeries,
    /// Sending-rate trajectory `r(t)` in bytes/sec, derived from delivered
    /// bytes over fixed ticks.
    pub rate: TimeSeries,
    /// Cumulative delivered bytes.
    pub delivered: TimeSeries,
    /// Mean throughput over the whole run.
    pub throughput: Rate,
    /// Link utilization.
    pub utilization: f64,
    /// Final CCA state (the snapshot used as a warm-start initial state).
    pub final_cca: BoxCca,
}

impl IdealRun {
    /// Throughput over the trailing `window` (steady-state estimate).
    pub fn tail_throughput(&self, window: Dur) -> Rate {
        let end = self.delivered.end_time();
        if end.as_nanos() <= window.as_nanos() {
            return self.throughput;
        }
        let a = end - window;
        let d_a = self.delivered.value_at(a).unwrap_or(0.0);
        let d_b = self.delivered.value_at(end).unwrap_or(0.0);
        Rate::from_bytes_per_sec((d_b - d_a).max(0.0) / window.as_secs_f64())
    }
}

/// Run `cca` alone on the path `spec` describes (an *ideal* path when the
/// spec's jitter/loss fields are zero, as [`RunSpec::new`] leaves them).
pub fn run_ideal_path(cca: BoxCca, spec: RunSpec) -> IdealRun {
    let net = Network::new(spec.sim(cca));
    let (result, mut ccas) = net.run_capture();
    let m = &result.flows[0];

    // Rate trajectory: delivered-byte derivative over 100 ms ticks (or
    // duration/100 for very short runs).
    let tick = Dur::from_millis(100).min(Dur(spec.duration.as_nanos() / 20).max(Dur::from_millis(1)));
    let mut rate = TimeSeries::new();
    let mut t = Time::ZERO + tick;
    let end = Time::ZERO + spec.duration;
    let mut prev = 0.0;
    while t <= end {
        let d = m.delivered.value_at(t).unwrap_or(0.0);
        rate.push(t, (d - prev).max(0.0) / tick.as_secs_f64());
        prev = d;
        t += tick;
    }

    IdealRun {
        spec,
        rtt: m.rtt.clone(),
        rate,
        delivered: m.delivered.clone(),
        throughput: m.throughput_at(result.end),
        utilization: result.utilization,
        final_cca: ccas.remove(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vegas_fills_an_ideal_link() {
        let spec = RunSpec::new(
            Rate::from_mbps(24.0),
            Dur::from_millis(40),
            Dur::from_secs(20),
        );
        let run = run_ideal_path(Box::new(cca::Vegas::default_params()), spec);
        assert!(
            run.tail_throughput(Dur::from_secs(5)).mbps() > 21.0,
            "tput={}",
            run.tail_throughput(Dur::from_secs(5))
        );
        // Vegas equilibrium: Rm + (2..4 pkts)/C of queueing. 1500 B at
        // 24 Mbit/s = 0.5 ms per packet, so RTT ∈ [~40.5, ~43] ms at the
        // tail (plus the packet's own 0.5 ms transmission).
        let end = run.rtt.end_time();
        let a = end - Dur::from_secs(5);
        let mean = run
            .rtt
            .mean_in(a, end)
            .expect("converged Vegas samples RTTs over the whole tail window");
        assert!(mean > 0.0405 && mean < 0.045, "mean rtt={mean}");
    }

    #[test]
    fn rate_trajectory_tracks_delivery() {
        let spec = RunSpec::new(
            Rate::from_mbps(24.0),
            Dur::from_millis(40),
            Dur::from_secs(10),
        );
        let run = run_ideal_path(Box::new(cca::Vegas::default_params()), spec);
        // Late-run rate samples should be near link rate.
        let end = run.rate.end_time();
        let tail = run
            .rate
            .mean_in(end - Dur::from_secs(3), end)
            .expect("a saturating ideal-path run records rate samples to the end");
        let tail_mbps = tail * 8.0 / 1e6;
        assert!((tail_mbps - 24.0).abs() < 3.0, "tail={tail_mbps}");
    }

    #[test]
    fn final_cca_snapshot_is_converged() {
        let spec = RunSpec::new(
            Rate::from_mbps(24.0),
            Dur::from_millis(40),
            Dur::from_secs(15),
        );
        let run = run_ideal_path(Box::new(cca::Vegas::default_params()), spec);
        // BDP = 24 Mbit/s × 40 ms = 80 packets; Vegas holds BDP + α..β.
        let w = run.final_cca.cwnd() / 1500;
        assert!((78..=92).contains(&w), "w={w}");
    }
}

//! Rate–delay profiling: Figures 2 and 3 of the paper.
//!
//! For a fixed `Rm`, sweep the ideal-path link rate `C` and measure the
//! converged delay range `[d_min(C), d_max(C)]` and achieved throughput.
//! The resulting curve is the CCA's rate–delay mapping: Vegas/FAST sit on
//! the line `Rm + α/C`, BBR's cwnd-limited mode on `2Rm + α/C`, Copa in a
//! thin band, PCC Vivace between `Rm` and `1.05·Rm`, and BBR's pacing mode
//! between `Rm` and `1.25·Rm`.

use crate::convergence::{analyze_convergence, ConvergenceReport};
use crate::runner::{run_ideal_path, RunSpec};
use cca::CcaFactory;
use simcore::par;
use simcore::units::{Dur, Rate};

/// One point of the rate–delay curve.
#[derive(Clone, Copy, Debug)]
pub struct ProfilePoint {
    /// The ideal path's link rate `C`.
    pub rate: Rate,
    /// Converged delay band (seconds) and convergence time.
    pub convergence: ConvergenceReport,
    /// Mean throughput over the run.
    pub throughput: Rate,
    /// Link utilization over the run.
    pub utilization: f64,
}

impl ProfilePoint {
    /// Whether the run was `f`-efficient at this point.
    pub fn is_efficient(&self, f: f64) -> bool {
        self.throughput.bytes_per_sec() >= f * self.rate.bytes_per_sec()
    }
}

/// Profile a CCA across a sweep of link rates at fixed `Rm`.
///
/// Runs are independent, so they execute on [`simcore::par`]'s worker pool
/// (the simulator itself stays single-threaded and deterministic per run);
/// points come back in rate order, non-converged rates are dropped.
pub fn profile_rate_delay(
    factory: &CcaFactory,
    rates: &[Rate],
    rm: Dur,
    duration: Dur,
) -> Vec<ProfilePoint> {
    par::map(
        rates.to_vec(),
        par::available_jobs(),
        |_i, rate| {
            let run = run_ideal_path(factory(), RunSpec::new(rate, rm, duration));
            let convergence = analyze_convergence(&run.rtt, 0.5, 1e-4)?;
            Some(ProfilePoint {
                rate,
                convergence,
                throughput: run.tail_throughput(Dur(duration.as_nanos() / 3)),
                utilization: run.utilization,
            })
        },
        None,
    )
    .into_iter()
    .flat_map(|r| r.outcome.expect("profiler worker panicked"))
    .collect()
}

/// A log-spaced rate sweep from `lo` to `hi` Mbit/s with `n` points
/// (Figure 3's x-axis: 0.1 → 100 Mbit/s).
pub fn log_sweep(lo_mbps: f64, hi_mbps: f64, n: usize) -> Vec<Rate> {
    assert!(n >= 2 && lo_mbps > 0.0 && hi_mbps > lo_mbps);
    let l0 = lo_mbps.ln();
    let l1 = hi_mbps.ln();
    (0..n)
        .map(|i| {
            let f = i as f64 / (n - 1) as f64;
            Rate::from_mbps((l0 + f * (l1 - l0)).exp())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::factory;

    #[test]
    fn log_sweep_endpoints_and_monotonicity() {
        let s = log_sweep(0.1, 100.0, 7);
        assert_eq!(s.len(), 7);
        assert!((s[0].mbps() - 0.1).abs() < 1e-9);
        assert!((s[6].mbps() - 100.0).abs() < 1e-6);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn vegas_profile_follows_alpha_over_c() {
        // Vegas holds 2..4 packets: queueing delay ∈ [2,4]·pkt/C, plus one
        // packet's transmission time.
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let rates = [Rate::from_mbps(6.0), Rate::from_mbps(48.0)];
        let points = profile_rate_delay(&f, &rates, Dur::from_millis(50), Dur::from_secs(25));
        assert_eq!(points.len(), 2);
        for p in &points {
            let pkt_time = 1500.0 * 8.0 / p.rate.bps();
            let queue = p.convergence.d_max - 0.050;
            // Between ~1 and ~6 packet-times of standing delay.
            assert!(
                queue > 0.5 * pkt_time && queue < 7.0 * pkt_time,
                "rate={} queue={} pkt={}",
                p.rate,
                queue,
                pkt_time
            );
            assert!(p.is_efficient(0.8), "util={}", p.utilization);
        }
        // Higher rate → smaller equilibrium delay (decreasing d_max(C)).
        assert!(points[1].convergence.d_max < points[0].convergence.d_max);
    }
}

//! The parallel sweep engine: scenario grids → ordered simulation results.
//!
//! Every §5 reproduction and ablation is a sweep of independent
//! deterministic simulations (seeds × parameters × scenarios). This module
//! turns such a sweep into data for [`simcore::par`]'s worker pool:
//!
//! * [`SweepJob`] — one labelled [`SimConfig`]. Configs are `Clone`, so a
//!   job list can be expanded once and run at any worker count (the
//!   determinism suite runs the *same* list at `jobs = 1` and `jobs = 4`
//!   and asserts bit-identical results).
//! * [`Sweep`] — the runner: executes a job list across `jobs` workers,
//!   preserves job order in the output, isolates per-job panics (a
//!   diverging scenario reports instead of poisoning the sweep), and
//!   appends JSON-lines timing records to `results/bench/sweep.json`.
//! * [`ScenarioSpec`] — a declarative grid (CCA constructor × rate × RTT ×
//!   jitter × seed) that expands into the two-flow asymmetric-jitter
//!   topology used throughout the paper's §5/§6 experiments: flow 0 sees
//!   the impairment, flow 1 is clean, and their throughput ratio is the
//!   starvation measurement.
//!
//! Progress reporting: set the `SWEEP_PROGRESS` environment variable (the
//! `repro --progress` flag does) to log each completion to stderr, or
//! attach a custom callback with [`Sweep::with_log`]. Reporting order may
//! vary across runs; result order never does.

use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig, SimResult};
use simcore::par::{self, Progress};
use simcore::rng::Xoshiro256;
use simcore::stats::Histogram;
use simcore::store::{Checkpointer, Digest, Manifest, ReadError, Store, CODE_TAG};
use simcore::units::{Dur, Rate, Time};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The content key of a cacheable job: canonical config bytes plus the
/// scenario seed. [`SweepJob::digest`] folds both with [`CODE_TAG`] into
/// the job's store digest, so a digest changes iff the configuration, the
/// seed, or the simulator version changes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobKey {
    /// Canonical, human-readable description of the full configuration —
    /// a `.scn` file's canonical print, or a grid point's canonical line.
    pub canonical: String,
    /// The scenario seed (0 when the canonical bytes embed all seeds, as
    /// `.scn` files do).
    pub seed: u64,
}

/// One labelled scenario in a sweep.
#[derive(Clone)]
pub struct SweepJob {
    /// Row label (lands in reports and timing records).
    pub label: String,
    /// The scenario to run.
    pub config: SimConfig,
    /// Content key for the result store. `None` means the job was built
    /// from an opaque `SimConfig` ([`SweepJob::new`]) and cannot be
    /// cached: an incremental sweep always re-executes it.
    pub key: Option<JobKey>,
    /// Grid coordinates, when the job came from a [`ScenarioSpec`] —
    /// persisted with the row so the report layer can filter by
    /// CCA/rate/jitter without re-deriving them.
    pub meta: Option<GridMeta>,
}

impl SweepJob {
    /// Label a config. The job carries no content key, so incremental
    /// sweeps treat it as uncacheable; prefer [`SweepJob::keyed`] or
    /// [`SweepJob::from_scenario`] where a canonical form exists.
    pub fn new(label: impl Into<String>, config: SimConfig) -> SweepJob {
        SweepJob {
            label: label.into(),
            config,
            key: None,
            meta: None,
        }
    }

    /// Label a config together with its canonical content key.
    pub fn keyed(
        label: impl Into<String>,
        canonical: impl Into<String>,
        seed: u64,
        config: SimConfig,
    ) -> SweepJob {
        SweepJob {
            label: label.into(),
            config,
            key: Some(JobKey { canonical: canonical.into(), seed }),
            meta: None,
        }
    }

    /// Builder: attach grid coordinates.
    pub fn with_meta(mut self, meta: GridMeta) -> SweepJob {
        self.meta = Some(meta);
        self
    }

    /// The job's store digest: FNV over (canonical bytes, seed,
    /// [`CODE_TAG`]). `None` for unkeyed jobs. A pure function of the
    /// key — stable across [`Clone`], worker counts and process restarts.
    pub fn digest(&self) -> Option<Digest> {
        self.key
            .as_ref()
            .map(|k| Digest::job(k.canonical.as_bytes(), k.seed, CODE_TAG))
    }

    /// Lower a parsed scenario-DSL file into a sweep job, labelled with
    /// the scenario's declared name. Lets `.scn` files ride in the same
    /// sweep as grid-expanded jobs:
    ///
    /// ```
    /// use starvation::sweep::SweepJob;
    /// let s = scenario::parse(
    ///     r#"scenario "dsl-row" {
    ///          link { rate 8mbps buffer ample }
    ///          duration 400ms
    ///          flow f0 { cca reno rtt 20ms }
    ///        }"#,
    /// ).unwrap();
    /// let job = SweepJob::from_scenario(&s);
    /// assert_eq!(job.label, "dsl-row");
    /// ```
    pub fn from_scenario(s: &scenario::Scenario) -> SweepJob {
        // The canonical printer is the digest input: `parse ∘ print ≡ id`,
        // so two sources describing the same scenario share one canonical
        // form, one digest, and one store entry. Per-flow seeds live in
        // the printed text, so the separate seed lane stays 0.
        SweepJob::keyed(s.name.clone(), s.to_string(), 0, scenario::compile(s))
    }
}

/// One sweep row: the job's label and its result (or captured panic),
/// at the same index the job occupied in the input list.
pub struct SweepRow {
    /// Position in the job list.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Simulation result, or the panic message of a diverging scenario.
    pub outcome: Result<SimResult, String>,
    /// Wall-clock time this job ran for.
    pub elapsed_ns: u64,
}

impl SweepRow {
    /// The result, or a panic repeating the scenario's own panic message.
    pub fn result(&self) -> &SimResult {
        match &self.outcome {
            Ok(r) => r,
            Err(msg) => panic!("sweep job '{}' panicked: {msg}", self.label),
        }
    }
}

/// An executed sweep: ordered rows plus aggregate timing.
pub struct SweepReport {
    /// The sweep's name (tags its timing records).
    pub name: String,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// One row per job, in job-list order.
    pub rows: Vec<SweepRow>,
    /// Wall-clock time of the whole sweep.
    pub elapsed_ns: u64,
}

impl SweepReport {
    /// Number of jobs that panicked.
    pub fn panics(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Results in job order; panics on the first diverged job.
    pub fn results(&self) -> Vec<&SimResult> {
        self.rows.iter().map(SweepRow::result).collect()
    }
}

/// Where the JSON-lines timing records go. Mirrors `testkit::bench`'s
/// resolution: `SWEEP_BENCH_DIR`, else `CARGO_MANIFEST_DIR/../../results/
/// bench` (the workspace layout), else `./results/bench`.
fn default_timing_path() -> PathBuf {
    let dir = std::env::var("SWEEP_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(m) => PathBuf::from(m).join("../../results/bench"),
            Err(_) => PathBuf::from("results/bench"),
        });
    dir.join("sweep.json")
}

/// Shared log-callback type for sweep progress messages.
pub type SweepLog = Arc<dyn Fn(&str) + Send + Sync>;

/// The sweep runner. Construct with [`Sweep::new`], configure with the
/// builder methods, execute with [`Sweep::run`].
pub struct Sweep {
    name: String,
    jobs: usize,
    timing: Option<PathBuf>,
    log: Option<SweepLog>,
    audit: bool,
    wall_clock: bool,
}

impl Sweep {
    /// A sweep named `name` using every available core and the default
    /// timing sink. Honors the `SWEEP_PROGRESS` environment variable by
    /// installing a stderr progress logger, and `SWEEP_AUDIT` (the
    /// `repro --audit` flag) by running every row under the runtime
    /// invariant auditor.
    pub fn new(name: impl Into<String>) -> Sweep {
        let log: Option<SweepLog> = match std::env::var("SWEEP_PROGRESS") {
            Ok(v) if v != "0" => Some(Arc::new(|msg: &str| eprintln!("{msg}"))),
            _ => None,
        };
        let audit = matches!(std::env::var("SWEEP_AUDIT"), Ok(v) if v != "0");
        let wall_clock = matches!(std::env::var("SWEEP_TIMING_WALL"), Ok(v) if v != "0");
        Sweep {
            name: name.into(),
            jobs: par::available_jobs(),
            timing: Some(default_timing_path()),
            log,
            audit,
            wall_clock,
        }
    }

    /// Builder: worker count (0 means "available parallelism").
    pub fn jobs(mut self, jobs: usize) -> Sweep {
        self.jobs = if jobs == 0 { par::available_jobs() } else { jobs };
        self
    }

    /// Builder: write timing records to a specific file.
    pub fn timing_path(mut self, path: PathBuf) -> Sweep {
        self.timing = Some(path);
        self
    }

    /// Builder: disable timing records (unit tests, throwaway sweeps).
    pub fn timing_off(mut self) -> Sweep {
        self.timing = None;
        self
    }

    /// Builder: attach a progress log callback.
    pub fn with_log(mut self, log: SweepLog) -> Sweep {
        self.log = Some(log);
        self
    }

    /// Builder: include wall-clock `elapsed_ns` fields in the timing
    /// records. Off by default (or via the `SWEEP_TIMING_WALL` environment
    /// variable) so that two identical sweeps write byte-identical timing
    /// files — wall time is the only nondeterministic field, and keeping it
    /// out by default means timing artifacts never diff golden outputs.
    pub fn wall_clock(mut self, on: bool) -> Sweep {
        self.wall_clock = on;
        self
    }

    /// Builder: run every row under the runtime invariant auditor
    /// ([`simcore::trace::Auditor`]). An invariant violation panics inside
    /// the job, so it surfaces as that row's `Err` outcome without
    /// poisoning the rest of the sweep.
    pub fn audit(mut self, on: bool) -> Sweep {
        self.audit = on;
        self
    }

    /// The sweep layer's one wall-clock read, isolated (like
    /// `store::Checkpointer::wall_now`) so the timing-sidecar edge can be
    /// contained at its one call site instead of tainting every caller of
    /// [`Sweep::run`].
    fn sweep_clock() -> Instant {
        // simlint: allow(determinism): sweep wall time feeds the (gated) timing sidecar only
        Instant::now()
    }

    /// Run the job list. Rows come back in job-list order regardless of
    /// worker count or completion order.
    pub fn run(self, jobs_list: Vec<SweepJob>) -> SweepReport {
        let total = jobs_list.len();
        let labels: Vec<String> = jobs_list.iter().map(|j| j.label.clone()).collect();
        let audit = self.audit;
        let configs: Vec<SimConfig> = jobs_list
            .into_iter()
            .map(|j| if audit { j.config.with_audit(true) } else { j.config })
            .collect();

        let name = self.name;
        let log = self.log;
        let progress = |p: Progress| {
            if let Some(log) = &log {
                log(&format!(
                    "sweep {name}: [{done}/{total}] {label} {status} in {ms:.0} ms",
                    done = p.done,
                    total = p.total,
                    label = labels[p.index],
                    status = if p.ok { "done" } else { "PANICKED" },
                    ms = p.elapsed.as_secs_f64() * 1e3,
                ));
            }
        };

        let t0 = Self::sweep_clock(); // simlint: allow(determinism-taint): timing sidecar only, gated off golden outputs
        let reports = par::map(
            configs,
            self.jobs,
            |_i, config| Network::new(config).run(),
            Some(&progress),
        );
        let elapsed_ns = t0.elapsed().as_nanos() as u64;

        let rows: Vec<SweepRow> = reports
            .into_iter()
            .zip(labels)
            .map(|(r, label)| SweepRow {
                index: r.index,
                label,
                outcome: match r.outcome {
                    par::JobOutcome::Ok(result) => Ok(result),
                    par::JobOutcome::Panicked(msg) => Err(msg),
                },
                elapsed_ns: r.elapsed.as_nanos() as u64,
            })
            .collect();

        let report = SweepReport {
            name,
            jobs: self.jobs,
            rows,
            elapsed_ns,
        };
        if let Some(path) = &self.timing {
            if let Err(e) = write_timing(path, &report, total, self.wall_clock) {
                eprintln!("sweep {}: cannot write {}: {e}", report.name, path.display());
            }
        }
        report
    }
}

/// Append JSON-lines timing records: one object per job plus a summary
/// line per sweep. Each line is a single `write` call, so concurrent
/// sweeps appending to the same file do not interleave within a line.
///
/// The wall-clock `elapsed_ns` fields are emitted only when `wall` is set
/// ([`Sweep::wall_clock`] / `SWEEP_TIMING_WALL`): everything else in a
/// record is a pure function of the job list, so without them two runs of
/// the same sweep produce byte-identical files.
fn write_timing(path: &PathBuf, report: &SweepReport, total: usize, wall: bool) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    for row in &report.rows {
        let wall_field =
            if wall { format!(",\"elapsed_ns\":{}", row.elapsed_ns) } else { String::new() };
        let line = format!(
            "{{\"sweep\":\"{}\",\"index\":{},\"label\":\"{}\",\"ok\":{}{}}}\n",
            json_escape(&report.name),
            row.index,
            json_escape(&row.label),
            row.outcome.is_ok(),
            wall_field,
        );
        f.write_all(line.as_bytes())?;
    }
    let wall_field =
        if wall { format!(",\"elapsed_ns\":{}", report.elapsed_ns) } else { String::new() };
    let summary = format!(
        "{{\"sweep\":\"{}\",\"jobs\":{},\"total\":{},\"panics\":{}{}}}\n",
        json_escape(&report.name),
        report.jobs,
        total,
        report.panics(),
        wall_field,
    );
    f.write_all(summary.as_bytes())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Throughput floor defining "starved" in persisted row summaries (§4.2's
/// starvation made operational: a flow below 1 Mbit/s in a window is
/// starving there). Fixed so every store entry measures the same thing.
pub const STARVE_FLOOR_MBPS: f64 = 1.0;

/// Window size for the per-flow starvation-duration measurement persisted
/// in row summaries.
pub const STARVE_WINDOW: Dur = Dur(1_000_000_000);

/// Grid coordinates persisted with a row: the report layer's filter axes.
#[derive(Clone, Debug, PartialEq)]
pub struct GridMeta {
    /// CCA slug (whitespace-free).
    pub cca: String,
    /// Bottleneck rate, Mbit/s.
    pub rate_mbps: f64,
    /// Propagation RTT, ms.
    pub rtt_ms: f64,
    /// Jitter bound on flow 0, ms.
    pub jitter_ms: f64,
    /// Scenario seed.
    pub seed: u64,
}

/// Compact per-flow summary persisted in the store — everything the
/// report and aggregation layers need, a few hundred bytes instead of a
/// `SimResult`'s time series.
#[derive(Clone, Debug, PartialEq)]
pub struct FlowSummary {
    /// Flow id (dense index).
    pub id: usize,
    /// Whole-run throughput (paper definition, departure-aware), Mbit/s.
    pub throughput_mbps: f64,
    /// Second-half throughput, Mbit/s (the steady-state number §5 quotes).
    pub second_half_mbps: f64,
    /// Total delivered bytes.
    pub delivered: u64,
    /// Total sent bytes (incl. retransmissions).
    pub sent: u64,
    /// Bytes declared lost.
    pub lost: u64,
    /// Bottleneck tail drops of this flow's packets.
    pub drops: u64,
    /// Jitter clamp violations on this flow's path.
    pub jitter_clamps: u64,
    /// Flow completion time, seconds (`None` = bulk or still active).
    pub fct_secs: Option<f64>,
    /// Time spent starved (below [`STARVE_FLOOR_MBPS`] per
    /// [`STARVE_WINDOW`]), seconds.
    pub starved_secs: f64,
}

/// One sweep row as persisted in the content-addressed store: label, grid
/// coordinates, run aggregates, and per-flow summaries. The canonical
/// serialization ([`RowSummary::to_store_bytes`]) is deterministic — a
/// pure function of the fields — so two runs of the same job write
/// byte-identical entries.
#[derive(Clone, Debug, PartialEq)]
pub struct RowSummary {
    /// The job's label.
    pub label: String,
    /// Grid coordinates, when the row came from a [`ScenarioSpec`].
    pub grid: Option<GridMeta>,
    /// Link utilization over the run.
    pub utilization: f64,
    /// Simulated end time, seconds.
    pub end_secs: f64,
    /// Jain fairness index over flow throughputs.
    pub jain: f64,
    /// Per-flow summaries in dense id order.
    pub flows: Vec<FlowSummary>,
}

impl RowSummary {
    /// Summarize a finished run. This is the streaming-aggregation pivot:
    /// the worker calls it the moment a simulation finishes, persists the
    /// summary, and drops the `SimResult` — a million-row sweep never
    /// holds more `SimResult`s than it has workers.
    pub fn of(label: &str, grid: Option<GridMeta>, r: &SimResult) -> RowSummary {
        debug_assert!(!label.contains('\n'), "labels must be single-line");
        let half = Time(r.end.as_nanos() / 2);
        let flows = r
            .flows
            .iter()
            .map(|f| FlowSummary {
                id: f.id.index(),
                throughput_mbps: f.throughput_at(r.end).mbps(),
                second_half_mbps: f.throughput_over(half, r.end).mbps(),
                delivered: f.total_delivered(),
                sent: f.sent_bytes,
                lost: f.lost_bytes,
                drops: f.drops,
                jitter_clamps: f.jitter_clamps,
                fct_secs: f.fct().map(|d| d.as_secs_f64()),
                starved_secs: f
                    .starvation_duration(Rate::from_mbps(STARVE_FLOOR_MBPS), STARVE_WINDOW, r.end)
                    .as_secs_f64(),
            })
            .collect();
        RowSummary {
            label: label.to_string(),
            grid,
            utilization: r.utilization,
            end_secs: r.end.as_nanos() as f64 / 1e9,
            jain: r.jain(),
            flows,
        }
    }

    /// Canonical store serialization: a fixed line format with
    /// shortest-round-trip float rendering, so equal summaries produce
    /// equal bytes and `from_store_bytes ∘ to_store_bytes ≡ id`.
    pub fn to_store_bytes(&self) -> Vec<u8> {
        let mut out = format!("rowv1 {}\n", self.label);
        if let Some(g) = &self.grid {
            debug_assert!(!g.cca.contains(char::is_whitespace), "cca slugs are whitespace-free");
            out.push_str(&format!(
                "grid {} {} {} {} {}\n",
                g.cca, g.rate_mbps, g.rtt_ms, g.jitter_ms, g.seed
            ));
        }
        out.push_str(&format!("run {} {} {}\n", self.utilization, self.end_secs, self.jain));
        for f in &self.flows {
            let fct = match f.fct_secs {
                Some(v) => format!("{v}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "flow {} {} {} {} {} {} {} {} {fct} {}\n",
                f.id,
                f.throughput_mbps,
                f.second_half_mbps,
                f.delivered,
                f.sent,
                f.lost,
                f.drops,
                f.jitter_clamps,
                f.starved_secs,
            ));
        }
        out.into_bytes()
    }

    /// Parse [`RowSummary::to_store_bytes`] output. Errors name the bad
    /// line — an undecodable entry is reported and recomputed, never
    /// trusted.
    pub fn from_store_bytes(bytes: &[u8]) -> Result<RowSummary, String> {
        let text = std::str::from_utf8(bytes).map_err(|_| "row entry is not UTF-8".to_string())?;
        let mut lines = text.lines();
        let head = lines.next().ok_or("empty row entry")?;
        let label = head
            .strip_prefix("rowv1 ")
            .ok_or_else(|| format!("bad row magic in {head:?}"))?
            .to_string();
        let mut grid = None;
        let mut run: Option<(f64, f64, f64)> = None;
        let mut flows = Vec::new();
        let f64_field = |s: &str| s.parse::<f64>().map_err(|_| format!("bad float {s:?}"));
        let u64_field = |s: &str| s.parse::<u64>().map_err(|_| format!("bad integer {s:?}"));
        for line in lines {
            let mut parts = line.split(' ');
            match parts.next() {
                Some("grid") => {
                    let fields: Vec<&str> = parts.collect();
                    let [cca, rate, rtt, jitter, seed] = fields[..] else {
                        return Err(format!("bad grid line {line:?}"));
                    };
                    grid = Some(GridMeta {
                        cca: cca.to_string(),
                        rate_mbps: f64_field(rate)?,
                        rtt_ms: f64_field(rtt)?,
                        jitter_ms: f64_field(jitter)?,
                        seed: u64_field(seed)?,
                    });
                }
                Some("run") => {
                    let fields: Vec<&str> = parts.collect();
                    let [util, end, jain] = fields[..] else {
                        return Err(format!("bad run line {line:?}"));
                    };
                    run = Some((f64_field(util)?, f64_field(end)?, f64_field(jain)?));
                }
                Some("flow") => {
                    let fields: Vec<&str> = parts.collect();
                    let [id, tp, half, delivered, sent, lost, drops, clamps, fct, starved] =
                        fields[..]
                    else {
                        return Err(format!("bad flow line {line:?}"));
                    };
                    flows.push(FlowSummary {
                        id: u64_field(id)? as usize,
                        throughput_mbps: f64_field(tp)?,
                        second_half_mbps: f64_field(half)?,
                        delivered: u64_field(delivered)?,
                        sent: u64_field(sent)?,
                        lost: u64_field(lost)?,
                        drops: u64_field(drops)?,
                        jitter_clamps: u64_field(clamps)?,
                        fct_secs: if fct == "-" { None } else { Some(f64_field(fct)?) },
                        starved_secs: f64_field(starved)?,
                    });
                }
                Some(other) => return Err(format!("unknown row line kind {other:?}")),
                None => continue,
            }
        }
        let (utilization, end_secs, jain) = run.ok_or("row entry has no run line")?;
        Ok(RowSummary { label, grid, utilization, end_secs, jain, flows })
    }
}

/// Streaming sweep aggregate: rows fold in one at a time (counters and
/// fixed-bucket histograms, no per-row allocation), so aggregating a
/// million rows costs a few kilobytes of state. Folding happens in job
/// order, making the aggregate independent of completion order and worker
/// count.
#[derive(Clone, Debug)]
pub struct SweepAggregate {
    /// Rows folded in.
    pub rows: usize,
    /// Flows across all rows.
    pub flows: usize,
    /// Flows that completed a finite transfer.
    pub completed_flows: usize,
    /// Flows with nonzero starvation time.
    pub starved_flows: usize,
    /// Per-flow whole-run throughput distribution, Mbit/s.
    pub throughput_mbps: Histogram,
    /// Per-flow starvation-duration distribution (starved flows only),
    /// seconds.
    pub starvation_secs: Histogram,
    /// Per-row Jain index distribution.
    pub jain: Histogram,
    /// Smallest per-row Jain index seen (the worst cell of the grid).
    pub min_jain: f64,
}

impl Default for SweepAggregate {
    fn default() -> SweepAggregate {
        SweepAggregate {
            rows: 0,
            flows: 0,
            completed_flows: 0,
            starved_flows: 0,
            throughput_mbps: Histogram::new(0.01, 10_000.0),
            starvation_secs: Histogram::new(0.001, 100_000.0),
            jain: Histogram::new(0.01, 1.01),
            min_jain: f64::INFINITY,
        }
    }
}

impl SweepAggregate {
    /// Fold one row in (per-row hot path: counters and histogram buckets
    /// only).
    // simlint: hot-root: runs once per row over million-row sweeps
    pub fn fold(&mut self, row: &RowSummary) {
        self.rows += 1;
        for f in &row.flows {
            self.flows += 1;
            self.throughput_mbps.fold(f.throughput_mbps);
            if f.fct_secs.is_some() {
                self.completed_flows += 1;
            }
            if f.starved_secs > 0.0 {
                self.starved_flows += 1;
                self.starvation_secs.fold(f.starved_secs);
            }
        }
        self.jain.fold(row.jain);
        if row.jain < self.min_jain {
            self.min_jain = row.jain;
        }
    }

    /// Fraction of flows that starved at all.
    pub fn starved_fraction(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.starved_flows as f64 / self.flows as f64
        }
    }

    /// Multi-line terminal render.
    pub fn render(&self) -> String {
        format!(
            "rows {}, flows {} ({} completed, {} starved = {:.1}%)\n\
             throughput: {}\n\
             starvation: {}\n\
             jain:       {} (min {:.4})",
            self.rows,
            self.flows,
            self.completed_flows,
            self.starved_flows,
            self.starved_fraction() * 100.0,
            self.throughput_mbps.render(" Mbit/s"),
            self.starvation_secs.render(" s"),
            self.jain.render(""),
            if self.min_jain.is_finite() { self.min_jain } else { 1.0 },
        )
    }
}

/// Where the default result store lives. Mirrors the timing sink's
/// resolution: `SWEEP_STORE_DIR`, else `CARGO_MANIFEST_DIR/../../results/
/// store` (the workspace layout), else `./results/store`.
pub fn default_store_dir() -> PathBuf {
    std::env::var("SWEEP_STORE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(m) => PathBuf::from(m).join("../../results/store"),
            Err(_) => PathBuf::from("results/store"),
        })
}

/// Options for an incremental ([`Sweep::run_incremental`]) sweep.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// Store root directory.
    pub dir: PathBuf,
    /// Ignore existing entries: recompute every row and overwrite. The
    /// store stays valid (writes are atomic) — this forces fresh results
    /// without invalidating other sweeps sharing the store.
    pub fresh: bool,
    /// Manifest checkpoint cadence in completed rows (0 = wall-time
    /// cadence only).
    pub checkpoint_rows: usize,
    /// Manifest checkpoint cadence in wall time.
    pub checkpoint_wall: Duration,
    /// Crash-injection hook for the fault-injection suite and the CI
    /// smoke: stop dispatching after this many rows have been persisted
    /// this run, skip all remaining jobs, and return with `aborted` set —
    /// *without* writing a final manifest, exactly as a kill between a
    /// row's rename and the next checkpoint would. Production sweeps
    /// leave it `None`.
    pub kill_after: Option<usize>,
}

impl StoreOptions {
    /// Defaults: resume mode, checkpoint every 64 rows or 5 s.
    pub fn new(dir: impl Into<PathBuf>) -> StoreOptions {
        StoreOptions {
            dir: dir.into(),
            fresh: false,
            checkpoint_rows: 64,
            checkpoint_wall: Duration::from_secs(5),
            kill_after: None,
        }
    }

    /// Builder: force recomputation of every row.
    pub fn fresh(mut self, on: bool) -> StoreOptions {
        self.fresh = on;
        self
    }

    /// Builder: checkpoint row cadence.
    pub fn checkpoint_rows(mut self, rows: usize) -> StoreOptions {
        self.checkpoint_rows = rows;
        self
    }

    /// Builder: the crash-injection hook.
    pub fn kill_after(mut self, rows: Option<usize>) -> StoreOptions {
        self.kill_after = rows;
        self
    }
}

/// One row of an incremental sweep: summary, or the panic message of a
/// diverging scenario.
pub struct IncRow {
    /// Position in the job list.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Row summary (from cache or a fresh run), or the captured panic.
    pub outcome: Result<RowSummary, String>,
}

/// An executed (or aborted) incremental sweep.
pub struct IncrementalReport {
    /// The sweep's name.
    pub name: String,
    /// Worker count.
    pub jobs: usize,
    /// Rows in the grid.
    pub total: usize,
    /// Simulations actually executed this run (cache misses, recomputes,
    /// uncacheable jobs, and rows that panicked mid-run).
    pub executed: usize,
    /// Rows served from the store without simulating.
    pub cached: usize,
    /// Rows whose store entry existed but failed validation, with the
    /// reported reason — each was recomputed, never silently served.
    pub recomputed: Vec<(String, String)>,
    /// Jobs without a content key (always executed, never persisted).
    pub uncacheable: usize,
    /// True when the crash-injection hook fired: the run stopped early
    /// and wrote no final manifest. `rows` is empty; resume by running
    /// the same sweep again.
    pub aborted: bool,
    /// One row per job in job-list order (empty when `aborted`).
    pub rows: Vec<IncRow>,
    /// Streaming aggregate over completed rows, folded in job order.
    pub aggregate: SweepAggregate,
    /// Where this sweep's checkpoint manifest lives.
    pub manifest_path: PathBuf,
}

impl IncrementalReport {
    /// Number of rows that panicked.
    pub fn panics(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_err()).count()
    }
}

/// What planning decided for one job.
enum Plan {
    /// Serve from the store: the validated, already-parsed summary.
    Cached(RowSummary),
    /// Execute (missing, invalid, uncacheable, or `fresh`).
    Run,
}

/// Shared checkpoint state the workers feed.
struct CkState {
    manifest: Manifest,
    cadence: Checkpointer,
    /// Rows persisted by *this* run (the kill hook's trigger).
    persisted: usize,
}

impl Sweep {
    /// Run the job list incrementally against a content-addressed store:
    /// rows whose digest is already present (and valid) are served from
    /// disk without simulating; everything else runs, is summarized, and
    /// is persisted the moment it completes (write-temp-then-rename).
    /// Periodic atomic manifest checkpoints plus per-row durability mean
    /// a killed sweep resumes where it stopped: re-running the same sweep
    /// executes only the rows the store does not hold — zero jobs when
    /// the grid is already complete.
    ///
    /// Unlike [`Sweep::run`], results stream: each `SimResult` is reduced
    /// to a compact [`RowSummary`] inside its worker and dropped, and the
    /// report's [`SweepAggregate`] is folded row by row — memory is
    /// O(rows · flows) summaries, never O(rows) simulation states.
    pub fn run_incremental(self, jobs_list: Vec<SweepJob>, opts: &StoreOptions) -> IncrementalReport {
        let store = Store::open(&opts.dir).unwrap_or_else(|e| {
            panic!("cannot open result store {}: {e}", opts.dir.display())
        });
        let total = jobs_list.len();
        let name = self.name;
        let log = self.log;
        let say = |msg: &str| {
            if let Some(log) = &log {
                log(msg);
            }
        };

        // The sweep's identity: a digest over the ordered job digests (or
        // labels, for unkeyed jobs). Names the manifest file, so the same
        // grid always checkpoints to the same place and different grids
        // sharing the store never fight over a manifest.
        let mut identity = String::new();
        for job in &jobs_list {
            match job.digest() {
                Some(d) => identity.push_str(&d.hex()),
                None => identity.push_str(&job.label),
            }
            identity.push('\n');
        }
        let sweep_digest = Digest::of(identity.as_bytes());
        let manifest_path = opts.dir.join(format!("sweep-{}.manifest", &sweep_digest.hex()[..16]));

        if let Some(prior) = Manifest::load(&manifest_path) {
            say(&format!(
                "sweep {name}: found checkpoint ({}/{} rows, tag {})",
                prior.done.len(),
                prior.total,
                prior.tag
            ));
        }

        // Plan: probe the store for every keyed job. A probe is a full
        // validating read — an entry that exists but is truncated,
        // corrupt, stale-tagged or undecodable is *reported* and queued
        // for recomputation, never served.
        let mut recomputed: Vec<(String, String)> = Vec::new();
        let mut uncacheable = 0usize;
        let mut cached = 0usize;
        let mut done_digests: Vec<Digest> = Vec::new();
        let plans: Vec<Plan> = jobs_list
            .iter()
            .map(|job| match job.digest() {
                None => {
                    uncacheable += 1;
                    Plan::Run
                }
                Some(_) if opts.fresh => Plan::Run,
                Some(d) => match store.read(&d) {
                    Ok(bytes) => match RowSummary::from_store_bytes(&bytes) {
                        Ok(row) => {
                            cached += 1;
                            done_digests.push(d);
                            Plan::Cached(row)
                        }
                        Err(e) => {
                            say(&format!("sweep {name}: {} invalid ({e}); recomputing", job.label));
                            recomputed.push((job.label.clone(), format!("undecodable entry: {e}")));
                            Plan::Run
                        }
                    },
                    Err(ReadError::Missing) => Plan::Run,
                    Err(e) => {
                        say(&format!("sweep {name}: {} invalid ({e}); recomputing", job.label));
                        recomputed.push((job.label.clone(), e.to_string()));
                        Plan::Run
                    }
                },
            })
            .collect();

        // Execute the cache misses. Each worker persists its row and
        // notes completion under the checkpoint lock; the manifest is
        // snapshotted atomically on the configured cadence.
        let to_run: Vec<(usize, SweepJob)> = jobs_list
            .into_iter()
            .enumerate()
            .zip(&plans)
            .filter(|(_, plan)| matches!(plan, Plan::Run))
            .map(|(pair, _)| pair)
            .collect();
        say(&format!(
            "sweep {name}: {cached} cached, {} to run ({} invalid entries recomputing)",
            to_run.len(),
            recomputed.len()
        ));

        let abort = AtomicBool::new(false);
        let mut manifest = Manifest::new(name.clone(), store.tag(), total);
        manifest.done = done_digests;
        let ck = Mutex::new(CkState {
            manifest,
            cadence: Checkpointer::new(opts.checkpoint_rows, opts.checkpoint_wall),
            persisted: 0,
        });
        let audit = self.audit;
        let run_labels: Vec<String> = to_run.iter().map(|(_, j)| j.label.clone()).collect();
        let progress = |p: Progress| {
            if let Some(log) = &log {
                log(&format!(
                    "sweep {name}: [{done}/{total}] {label} {status} in {ms:.0} ms",
                    done = p.done,
                    total = p.total,
                    label = run_labels[p.index],
                    status = if p.ok { "done" } else { "PANICKED" },
                    ms = p.elapsed.as_secs_f64() * 1e3,
                ));
            }
        };

        let reports = par::map(
            to_run,
            self.jobs,
            |_i, (_index, job)| {
                if abort.load(Ordering::Relaxed) {
                    return None;
                }
                let digest = job.digest();
                let config = if audit { job.config.with_audit(true) } else { job.config };
                let result = Network::new(config).run();
                let row = RowSummary::of(&job.label, job.meta, &result);
                drop(result); // streaming: the SimResult dies in its worker
                if let Some(d) = digest {
                    if let Err(e) = store.write(&d, &row.to_store_bytes()) {
                        // A row that cannot persist still reports; the next
                        // run will recompute it.
                        eprintln!("sweep: cannot persist {}: {e}", row.label);
                    } else {
                        let mut st = ck.lock().expect("checkpoint state lock");
                        st.persisted += 1;
                        st.manifest.done.push(d);
                        if opts.kill_after.is_some_and(|n| st.persisted >= n) {
                            // Simulated kill: stop here, between the row's
                            // rename and the next manifest snapshot.
                            abort.store(true, Ordering::Relaxed);
                        } else if st.cadence.row_done() {
                            if let Err(e) = st.manifest.save(&manifest_path) {
                                eprintln!("sweep: cannot checkpoint: {e}");
                            }
                        }
                    }
                }
                Some(row)
            },
            Some(&progress),
        );

        let executed = reports
            .iter()
            .filter(|r| match &r.outcome {
                par::JobOutcome::Ok(row) => row.is_some(),
                par::JobOutcome::Panicked(_) => true,
            })
            .count();

        let ck = ck.into_inner().expect("checkpoint state unpoisoned after pool drain");
        if abort.load(Ordering::Relaxed) {
            say(&format!(
                "sweep {name}: ABORTED by kill hook after {} persisted rows",
                ck.persisted
            ));
            return IncrementalReport {
                name,
                jobs: self.jobs,
                total,
                executed,
                cached,
                recomputed,
                uncacheable,
                aborted: true,
                rows: Vec::new(),
                aggregate: SweepAggregate::default(),
                manifest_path,
            };
        }

        // Final checkpoint: the complete (sorted, deduped) digest set. An
        // interrupted-then-resumed sweep converges to the same bytes as an
        // uninterrupted one.
        if let Err(e) = ck.manifest.save(&manifest_path) {
            eprintln!("sweep: cannot write final manifest: {e}");
        }

        // Assemble rows in job order and fold the aggregate in that same
        // order, so the aggregate is identical at any worker count.
        let mut fresh_rows = reports.into_iter();
        let mut run_pos = 0usize;
        let mut rows: Vec<IncRow> = Vec::with_capacity(total);
        for (index, plan) in plans.into_iter().enumerate() {
            let (label, outcome) = match plan {
                Plan::Cached(row) => (row.label.clone(), Ok(row)),
                Plan::Run => {
                    let report = fresh_rows
                        .next()
                        .expect("one pool report exists per planned run");
                    let label = run_labels[run_pos].clone();
                    run_pos += 1;
                    match report.outcome {
                        par::JobOutcome::Ok(Some(row)) => (label, Ok(row)),
                        par::JobOutcome::Ok(None) => {
                            unreachable!("jobs are only skipped when aborting")
                        }
                        par::JobOutcome::Panicked(msg) => (label, Err(msg)),
                    }
                }
            };
            rows.push(IncRow { index, label, outcome });
        }
        let mut aggregate = SweepAggregate::default();
        for row in &rows {
            if let Ok(summary) = &row.outcome {
                aggregate.fold(summary);
            }
        }

        IncrementalReport {
            name,
            jobs: self.jobs,
            total,
            executed,
            cached,
            recomputed,
            uncacheable,
            aborted: false,
            rows,
            aggregate,
            manifest_path,
        }
    }
}

/// A seeded CCA constructor with a report name: the grid's algorithm axis.
#[derive(Clone)]
pub struct CcaSpec {
    /// Short name for labels ("bbr", "delay-aimd", …).
    pub name: String,
    /// Constructor; the seed decorrelates any internal randomness.
    pub mk: Arc<dyn Fn(u64) -> BoxCca + Send + Sync>,
}

impl CcaSpec {
    /// Name a constructor.
    pub fn new(name: impl Into<String>, mk: impl Fn(u64) -> BoxCca + Send + Sync + 'static) -> CcaSpec {
        CcaSpec {
            name: name.into(),
            mk: Arc::new(mk),
        }
    }
}

/// One point of an expanded grid.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// CCA name.
    pub cca: String,
    /// Bottleneck rate.
    pub rate: Rate,
    /// Propagation RTT of both flows.
    pub rm: Dur,
    /// Jitter bound on flow 0's path (`ZERO` = clean).
    pub jitter: Dur,
    /// Scenario seed (CCA phasing and jitter stream derive from it).
    pub seed: u64,
}

impl GridPoint {
    /// The point's row label: `cca/rate/rtt/jitter/seed`.
    pub fn label(&self) -> String {
        format!(
            "{}/r{:.0}/rtt{}/j{}/s{}",
            self.cca,
            self.rate.mbps(),
            self.rm.as_millis_f64(),
            self.jitter.as_millis_f64(),
            self.seed
        )
    }

    /// The point's canonical content bytes: every parameter that reaches
    /// the expanded `SimConfig`, in a fixed field order with exact
    /// representations (integer nanoseconds; shortest-round-trip floats).
    /// Two `GridPoint`s with equal fields produce equal canonical strings
    /// no matter how or where they were constructed — this string, not
    /// the struct, is the digest input.
    pub fn canonical(&self, duration: Dur, sample_every: Dur) -> String {
        format!(
            "two-flow-jitter cca={} rate_mbps={} rtt_ns={} jitter_ns={} seed={} \
             duration_ns={} sample_ns={} buffer=ample",
            self.cca,
            self.rate.mbps(),
            self.rm.as_nanos(),
            self.jitter.as_nanos(),
            self.seed,
            duration.as_nanos(),
            sample_every.as_nanos(),
        )
    }

    /// The point's coordinates as persistable row metadata.
    pub fn meta(&self) -> GridMeta {
        GridMeta {
            cca: self.cca.clone(),
            rate_mbps: self.rate.mbps(),
            rtt_ms: self.rm.as_millis_f64(),
            jitter_ms: self.jitter.as_millis_f64(),
            seed: self.seed,
        }
    }
}

/// A declarative scenario grid: the cartesian product of CCA constructors,
/// link rates, propagation RTTs, jitter bounds and seeds, expanded in that
/// (row-major) order into two-flow asymmetric-jitter scenarios.
pub struct ScenarioSpec {
    /// Sweep name (tags labels and timing records).
    pub name: String,
    /// The algorithm axis.
    pub ccas: Vec<CcaSpec>,
    /// Bottleneck rates.
    pub rates: Vec<Rate>,
    /// Propagation RTTs.
    pub rtts: Vec<Dur>,
    /// Jitter bounds applied to flow 0 (`ZERO` entries mean both clean).
    pub jitters: Vec<Dur>,
    /// Scenario seeds.
    pub seeds: Vec<u64>,
    /// Simulated duration of every point.
    pub duration: Dur,
    /// Series decimation interval of every point.
    pub sample_every: Dur,
}

impl ScenarioSpec {
    /// An empty grid running 30-second scenarios at 10 ms decimation.
    pub fn new(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            ccas: Vec::new(),
            rates: Vec::new(),
            rtts: Vec::new(),
            jitters: Vec::new(),
            seeds: vec![0],
            duration: Dur::from_secs(30),
            sample_every: Dur::from_millis(10),
        }
    }

    /// Builder: add a CCA constructor.
    pub fn cca(mut self, spec: CcaSpec) -> ScenarioSpec {
        self.ccas.push(spec);
        self
    }

    /// Builder: the rate axis, in Mbit/s.
    pub fn rates_mbps(mut self, rates: &[f64]) -> ScenarioSpec {
        self.rates = rates.iter().map(|&m| Rate::from_mbps(m)).collect();
        self
    }

    /// Builder: the RTT axis, in milliseconds.
    pub fn rtts_ms(mut self, rtts: &[u64]) -> ScenarioSpec {
        self.rtts = rtts.iter().map(|&m| Dur::from_millis(m)).collect();
        self
    }

    /// Builder: the jitter axis, in milliseconds (0 = clean paths).
    pub fn jitters_ms(mut self, jitters: &[u64]) -> ScenarioSpec {
        self.jitters = jitters.iter().map(|&m| Dur::from_millis(m)).collect();
        self
    }

    /// Builder: the seed axis.
    pub fn seeds(mut self, seeds: &[u64]) -> ScenarioSpec {
        self.seeds = seeds.to_vec();
        self
    }

    /// Builder: simulated duration per point.
    pub fn duration(mut self, d: Dur) -> ScenarioSpec {
        self.duration = d;
        self
    }

    /// Builder: series decimation per point.
    pub fn sample_every(mut self, every: Dur) -> ScenarioSpec {
        self.sample_every = every;
        self
    }

    /// The expanded grid, row-major: cca → rate → rtt → jitter → seed.
    pub fn points(&self) -> Vec<(CcaSpec, GridPoint)> {
        let mut out = Vec::new();
        for cca in &self.ccas {
            for &rate in &self.rates {
                for &rm in &self.rtts {
                    for &jitter in &self.jitters {
                        for &seed in &self.seeds {
                            out.push((
                                cca.clone(),
                                GridPoint {
                                    cca: cca.name.clone(),
                                    rate,
                                    rm,
                                    jitter,
                                    seed,
                                },
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Expand every point into a labelled two-flow scenario: flow 0 carries
    /// the jitter (rng derived from the seed), flow 1 is clean; both run the
    /// point's CCA with decorrelated seeds on an ample-buffer link.
    pub fn expand(&self) -> Vec<SweepJob> {
        self.points()
            .into_iter()
            .map(|(cca, p)| {
                let link = LinkConfig::ample_buffer(p.rate);
                let mut jittered = FlowConfig::bulk((cca.mk)(p.seed * 2 + 1), p.rm);
                if p.jitter > Dur::ZERO {
                    jittered = jittered.with_jitter(Jitter::Random {
                        max: p.jitter,
                        rng: Xoshiro256::new(p.seed * 31 + 7),
                    });
                }
                let clean = FlowConfig::bulk((cca.mk)(p.seed * 2 + 2), p.rm);
                let config = SimConfig::new(link, vec![jittered, clean], self.duration)
                    .with_sample_every(self.sample_every);
                let meta = p.meta();
                SweepJob::keyed(
                    p.label(),
                    p.canonical(self.duration, self.sample_every),
                    p.seed,
                    config,
                )
                .with_meta(meta)
            })
            .collect()
    }

    /// Expand and run the grid across `jobs` workers.
    pub fn run(&self, jobs: usize) -> SweepReport {
        Sweep::new(self.name.clone()).jobs(jobs).run(self.expand())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("sweep-selftest")
            .cca(CcaSpec::new("const", |_s| {
                Box::new(cca::ConstCwnd::new(20 * 1500))
            }))
            .rates_mbps(&[12.0, 24.0])
            .rtts_ms(&[40])
            .jitters_ms(&[0, 5])
            .seeds(&[1, 2])
            .duration(Dur::from_secs(2))
    }

    #[test]
    fn scenario_files_lower_into_sweep_jobs() {
        // A DSL row and the equivalent hand-built job run identically in
        // one sweep (corpus entries can ride alongside grid points).
        let parsed = scenario::parse(
            r#"scenario "dsl-row" {
                 link { rate 12mbps buffer ample }
                 duration 1s
                 flow f0 { cca reno rtt 40ms }
               }"#,
        )
        .expect("parses");
        let by_hand = SimConfig::new(
            netsim::LinkConfig::ample_buffer(Rate::from_mbps(12.0)),
            vec![netsim::FlowConfig::bulk(
                Box::new(cca::NewReno::default_params()),
                Dur::from_millis(40),
            )],
            Dur::from_secs(1),
        );
        let jobs = vec![SweepJob::from_scenario(&parsed), SweepJob::new("hand", by_hand)];
        let report = Sweep::new("dsl-interop").jobs(2).timing_off().run(jobs);
        assert_eq!(report.rows[0].label, "dsl-row");
        let a = report.rows[0].outcome.as_ref().expect("dsl row runs");
        let b = report.rows[1].outcome.as_ref().expect("hand row runs");
        assert_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
    }

    #[test]
    fn grid_expands_row_major() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        // 1 cca × 2 rates × 1 rtt × 2 jitters × 2 seeds.
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].label, "const/r12/rtt40/j0/s1");
        assert_eq!(jobs[1].label, "const/r12/rtt40/j0/s2");
        assert_eq!(jobs[2].label, "const/r12/rtt40/j5/s1");
        assert_eq!(jobs[7].label, "const/r24/rtt40/j5/s2");
        // Every point is the two-flow topology.
        assert!(jobs.iter().all(|j| j.config.flows.len() == 2));
    }

    #[test]
    fn sweep_rows_are_ordered_and_complete() {
        let spec = tiny_spec();
        let report = Sweep::new("selftest").jobs(4).timing_off().run(spec.expand());
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.panics(), 0);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.result().flows[0].total_delivered() > 0, "{}", row.label);
        }
    }

    #[test]
    fn cloned_job_list_runs_twice_identically() {
        let jobs = tiny_spec().expand();
        let a = Sweep::new("a").jobs(2).timing_off().run(jobs.clone());
        let b = Sweep::new("b").jobs(3).timing_off().run(jobs);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.label, rb.label);
            assert_eq!(
                ra.result().flows[0].sent_bytes,
                rb.result().flows[0].sent_bytes
            );
        }
    }

    /// A CCA that diverges (panics) on its first acknowledgement — the
    /// "one scenario poisons the sweep" failure mode the engine isolates.
    #[derive(Clone)]
    struct DivergingCca;

    impl cca::CongestionControl for DivergingCca {
        fn on_ack(&mut self, _ev: &cca::AckEvent) {
            panic!("scenario diverged");
        }
        fn on_loss(&mut self, _ev: &cca::LossEvent) {}
        fn cwnd(&self) -> u64 {
            10 * 1500
        }
        fn pacing_rate(&self) -> Option<Rate> {
            None
        }
        fn name(&self) -> &'static str {
            "diverging"
        }
        fn clone_box(&self) -> BoxCca {
            Box::new(self.clone())
        }
    }

    #[test]
    fn panicking_scenario_reports_without_poisoning() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let rm = Dur::from_millis(40);
        let good = |label: &str| {
            SweepJob::new(
                label,
                SimConfig::new(
                    link,
                    vec![FlowConfig::bulk(Box::new(cca::ConstCwnd::new(10 * 1500)), rm)],
                    Dur::from_secs(1),
                ),
            )
        };
        let bad = SweepJob::new(
            "bad",
            SimConfig::new(
                link,
                vec![FlowConfig::bulk(Box::new(DivergingCca), rm)],
                Dur::from_secs(1),
            ),
        );
        let report = Sweep::new("panic-isolation")
            .jobs(2)
            .timing_off()
            .run(vec![good("good-0"), bad, good("good-2")]);
        assert_eq!(report.panics(), 1);
        assert!(report.rows[0].outcome.is_ok());
        match &report.rows[1].outcome {
            Err(msg) => assert!(msg.contains("diverged"), "{msg}"),
            Ok(_) => panic!("diverging scenario should have panicked"),
        }
        assert!(report.rows[2].outcome.is_ok(), "panic must not poison later jobs");
        assert!(report.rows[2].result().flows[0].total_delivered() > 0);
    }

    #[test]
    fn audited_sweep_matches_unaudited() {
        // The auditor must pass on every grid row and change nothing.
        let jobs = tiny_spec().expand();
        let plain = Sweep::new("plain").jobs(2).timing_off().run(jobs.clone());
        let audited = Sweep::new("audited").jobs(2).timing_off().audit(true).run(jobs);
        assert_eq!(audited.panics(), 0);
        for (ra, rb) in plain.rows.iter().zip(&audited.rows) {
            assert_eq!(
                ra.result().flows[0].sent_bytes,
                rb.result().flows[0].sent_bytes,
                "{}",
                ra.label
            );
            assert_eq!(
                ra.result().flows[0].total_delivered(),
                rb.result().flows[0].total_delivered(),
                "{}",
                ra.label
            );
        }
    }

    #[test]
    fn timing_records_are_json_lines_and_deterministic_by_default() {
        let dir = std::env::temp_dir().join("sweep_selftest_timing");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.json");
        let report = Sweep::new("timed")
            .jobs(2)
            .timing_path(path.clone())
            .wall_clock(false)
            .run(tiny_spec().expand());
        assert_eq!(report.rows.len(), 8);
        let text = std::fs::read_to_string(&path).unwrap();
        // 8 job lines + 1 summary line.
        assert_eq!(text.lines().count(), 9, "{text}");
        assert!(text.contains("\"sweep\":\"timed\""));
        assert!(text.contains("\"label\":\"const/r12/rtt40/j0/s1\""));
        assert!(text.contains("\"jobs\":2"));
        // Wall-clock fields are opt-in; by default the file is a pure
        // function of the job list.
        assert!(!text.contains("elapsed_ns"), "{text}");

        // Re-running the identical sweep appends byte-identical records.
        let _ = Sweep::new("timed")
            .jobs(3)
            .timing_path(path.clone())
            .wall_clock(false)
            .run(tiny_spec().expand());
        let text2 = std::fs::read_to_string(&path).unwrap();
        let (first, second) = text2.split_at(text.len());
        assert_eq!(first, text);
        assert_eq!(second.replace("\"jobs\":3", "\"jobs\":2"), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wall_clock_timing_is_opt_in() {
        let dir = std::env::temp_dir().join("sweep_selftest_timing_wall");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.json");
        let _ = Sweep::new("walled")
            .jobs(2)
            .timing_path(path.clone())
            .wall_clock(true)
            .run(tiny_spec().expand());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 9, "{text}");
        assert!(text.lines().all(|l| l.contains("\"elapsed_ns\":")), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_callback_fires_per_job() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let report = Sweep::new("logged")
            .jobs(2)
            .timing_off()
            .with_log(Arc::new(move |msg: &str| sink.lock().unwrap().push(msg.to_string())))
            .run(tiny_spec().expand());
        assert_eq!(seen.lock().unwrap().len(), report.rows.len());
        assert!(seen.lock().unwrap().iter().all(|m| m.contains("sweep logged:")));
    }

    fn store_tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sweep_inc_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn row_summary_store_bytes_roundtrip() {
        let report = Sweep::new("rt").jobs(1).timing_off().run(tiny_spec().expand());
        let row = report.rows[0].result();
        let meta = GridMeta {
            cca: "const".to_string(),
            rate_mbps: 12.0,
            rtt_ms: 40.0,
            jitter_ms: 0.0,
            seed: 1,
        };
        let summary = RowSummary::of("const/r12/rtt40/j0/s1", Some(meta), row);
        let bytes = summary.to_store_bytes();
        let back = RowSummary::from_store_bytes(&bytes).expect("roundtrip parses");
        assert_eq!(back, summary);
        // Serialization is a pure function of the summary.
        assert_eq!(back.to_store_bytes(), bytes);
        // Undecodable entries report, not panic.
        assert!(RowSummary::from_store_bytes(b"").is_err());
        assert!(RowSummary::from_store_bytes(b"rowv2 x\nrun 1 2 3\n").is_err());
        assert!(RowSummary::from_store_bytes(b"rowv1 x\nrun 1 nope 3\n").is_err());
        assert!(RowSummary::from_store_bytes(b"rowv1 x\nflow 0 1 2\n").is_err());
        assert!(RowSummary::from_store_bytes(b"rowv1 x\n").is_err(), "no run line");
    }

    #[test]
    fn incremental_rerun_executes_zero_jobs_and_matches_bytes() {
        let dir = store_tmpdir("rerun");
        let opts = StoreOptions::new(&dir).checkpoint_rows(2);
        let first = Sweep::new("inc").jobs(2).timing_off().run_incremental(tiny_spec().expand(), &opts);
        assert_eq!(first.total, 8);
        assert_eq!(first.executed, 8);
        assert_eq!(first.cached, 0);
        assert!(!first.aborted);
        assert_eq!(first.aggregate.rows, 8);
        assert!(first.manifest_path.exists());

        let second = Sweep::new("inc").jobs(4).timing_off().run_incremental(tiny_spec().expand(), &opts);
        assert_eq!(second.executed, 0, "complete grid re-runs nothing");
        assert_eq!(second.cached, 8);
        let rows_a: Vec<Vec<u8>> = first
            .rows
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().to_store_bytes())
            .collect();
        let rows_b: Vec<Vec<u8>> = second
            .rows
            .iter()
            .map(|r| r.outcome.as_ref().unwrap().to_store_bytes())
            .collect();
        assert_eq!(rows_a, rows_b, "cached rows are byte-identical to fresh rows");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_flag_recomputes_without_invalidating_store() {
        let dir = store_tmpdir("fresh");
        let opts = StoreOptions::new(&dir);
        let first = Sweep::new("f").jobs(2).timing_off().run_incremental(tiny_spec().expand(), &opts);
        assert_eq!(first.executed, 8);
        let fresh = Sweep::new("f")
            .jobs(2)
            .timing_off()
            .run_incremental(tiny_spec().expand(), &opts.clone().fresh(true));
        assert_eq!(fresh.executed, 8, "--fresh re-runs everything");
        assert_eq!(fresh.cached, 0);
        // And the store is still a valid full cache afterwards.
        let third = Sweep::new("f").jobs(2).timing_off().run_incremental(tiny_spec().expand(), &opts);
        assert_eq!(third.executed, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unkeyed_jobs_always_execute() {
        let dir = store_tmpdir("unkeyed");
        let config = SimConfig::new(
            netsim::LinkConfig::ample_buffer(Rate::from_mbps(12.0)),
            vec![netsim::FlowConfig::bulk(
                Box::new(cca::ConstCwnd::new(20 * 1500)),
                Dur::from_millis(40),
            )],
            Dur::from_secs(1),
        );
        let opts = StoreOptions::new(&dir);
        let jobs = || vec![SweepJob::new("opaque", config.clone())];
        let a = Sweep::new("u").jobs(1).timing_off().run_incremental(jobs(), &opts);
        assert_eq!((a.executed, a.uncacheable), (1, 1));
        let b = Sweep::new("u").jobs(1).timing_off().run_incremental(jobs(), &opts);
        assert_eq!((b.executed, b.uncacheable), (1, 1), "no key ⇒ no caching");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_hook_aborts_and_resume_completes_the_grid() {
        let dir = store_tmpdir("kill");
        let killed = Sweep::new("k").jobs(1).timing_off().run_incremental(
            tiny_spec().expand(),
            &StoreOptions::new(&dir).checkpoint_rows(1).kill_after(Some(3)),
        );
        assert!(killed.aborted);
        assert_eq!(killed.executed, 3);
        assert!(killed.rows.is_empty());

        let resumed = Sweep::new("k")
            .jobs(1)
            .timing_off()
            .run_incremental(tiny_spec().expand(), &StoreOptions::new(&dir));
        assert!(!resumed.aborted);
        assert_eq!(resumed.cached, 3, "persisted rows survive the kill");
        assert_eq!(resumed.executed, 5, "only the missing rows run");
        assert_eq!(resumed.aggregate.rows, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_canonical_separates_every_axis() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        let canon: Vec<&str> = jobs.iter().map(|j| j.key.as_ref().unwrap().canonical.as_str()).collect();
        let mut unique = canon.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), jobs.len(), "every grid point has a distinct canonical form");
        let digests: Vec<String> = jobs.iter().map(|j| j.digest().unwrap().hex()).collect();
        let mut ud = digests.clone();
        ud.sort();
        ud.dedup();
        assert_eq!(ud.len(), jobs.len(), "distinct canonical forms ⇒ distinct digests");
    }

    #[test]
    fn aggregate_folds_rows_and_counts_starvation() {
        let dir = store_tmpdir("agg");
        let report = Sweep::new("agg")
            .jobs(2)
            .timing_off()
            .run_incremental(tiny_spec().expand(), &StoreOptions::new(&dir));
        let agg = &report.aggregate;
        assert_eq!(agg.rows, 8);
        assert_eq!(agg.flows, 16, "two flows per grid point");
        assert!(agg.throughput_mbps.total() == 16);
        assert!(agg.min_jain <= 1.0 && agg.min_jain > 0.0);
        let rendered = agg.render();
        assert!(rendered.contains("rows 8"), "{rendered}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

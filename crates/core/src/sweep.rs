//! The parallel sweep engine: scenario grids → ordered simulation results.
//!
//! Every §5 reproduction and ablation is a sweep of independent
//! deterministic simulations (seeds × parameters × scenarios). This module
//! turns such a sweep into data for [`simcore::par`]'s worker pool:
//!
//! * [`SweepJob`] — one labelled [`SimConfig`]. Configs are `Clone`, so a
//!   job list can be expanded once and run at any worker count (the
//!   determinism suite runs the *same* list at `jobs = 1` and `jobs = 4`
//!   and asserts bit-identical results).
//! * [`Sweep`] — the runner: executes a job list across `jobs` workers,
//!   preserves job order in the output, isolates per-job panics (a
//!   diverging scenario reports instead of poisoning the sweep), and
//!   appends JSON-lines timing records to `results/bench/sweep.json`.
//! * [`ScenarioSpec`] — a declarative grid (CCA constructor × rate × RTT ×
//!   jitter × seed) that expands into the two-flow asymmetric-jitter
//!   topology used throughout the paper's §5/§6 experiments: flow 0 sees
//!   the impairment, flow 1 is clean, and their throughput ratio is the
//!   starvation measurement.
//!
//! Progress reporting: set the `SWEEP_PROGRESS` environment variable (the
//! `repro --progress` flag does) to log each completion to stderr, or
//! attach a custom callback with [`Sweep::with_log`]. Reporting order may
//! vary across runs; result order never does.

use cca::BoxCca;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig, SimResult};
use simcore::par::{self, Progress};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// One labelled scenario in a sweep.
#[derive(Clone)]
pub struct SweepJob {
    /// Row label (lands in reports and timing records).
    pub label: String,
    /// The scenario to run.
    pub config: SimConfig,
}

impl SweepJob {
    /// Label a config.
    pub fn new(label: impl Into<String>, config: SimConfig) -> SweepJob {
        SweepJob {
            label: label.into(),
            config,
        }
    }

    /// Lower a parsed scenario-DSL file into a sweep job, labelled with
    /// the scenario's declared name. Lets `.scn` files ride in the same
    /// sweep as grid-expanded jobs:
    ///
    /// ```
    /// use starvation::sweep::SweepJob;
    /// let s = scenario::parse(
    ///     r#"scenario "dsl-row" {
    ///          link { rate 8mbps buffer ample }
    ///          duration 400ms
    ///          flow f0 { cca reno rtt 20ms }
    ///        }"#,
    /// ).unwrap();
    /// let job = SweepJob::from_scenario(&s);
    /// assert_eq!(job.label, "dsl-row");
    /// ```
    pub fn from_scenario(s: &scenario::Scenario) -> SweepJob {
        SweepJob::new(s.name.clone(), scenario::compile(s))
    }
}

/// One sweep row: the job's label and its result (or captured panic),
/// at the same index the job occupied in the input list.
pub struct SweepRow {
    /// Position in the job list.
    pub index: usize,
    /// The job's label.
    pub label: String,
    /// Simulation result, or the panic message of a diverging scenario.
    pub outcome: Result<SimResult, String>,
    /// Wall-clock time this job ran for.
    pub elapsed_ns: u64,
}

impl SweepRow {
    /// The result, or a panic repeating the scenario's own panic message.
    pub fn result(&self) -> &SimResult {
        match &self.outcome {
            Ok(r) => r,
            Err(msg) => panic!("sweep job '{}' panicked: {msg}", self.label),
        }
    }
}

/// An executed sweep: ordered rows plus aggregate timing.
pub struct SweepReport {
    /// The sweep's name (tags its timing records).
    pub name: String,
    /// Worker count the sweep ran with.
    pub jobs: usize,
    /// One row per job, in job-list order.
    pub rows: Vec<SweepRow>,
    /// Wall-clock time of the whole sweep.
    pub elapsed_ns: u64,
}

impl SweepReport {
    /// Number of jobs that panicked.
    pub fn panics(&self) -> usize {
        self.rows.iter().filter(|r| r.outcome.is_err()).count()
    }

    /// Results in job order; panics on the first diverged job.
    pub fn results(&self) -> Vec<&SimResult> {
        self.rows.iter().map(SweepRow::result).collect()
    }
}

/// Where the JSON-lines timing records go. Mirrors `testkit::bench`'s
/// resolution: `SWEEP_BENCH_DIR`, else `CARGO_MANIFEST_DIR/../../results/
/// bench` (the workspace layout), else `./results/bench`.
fn default_timing_path() -> PathBuf {
    let dir = std::env::var("SWEEP_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(m) => PathBuf::from(m).join("../../results/bench"),
            Err(_) => PathBuf::from("results/bench"),
        });
    dir.join("sweep.json")
}

/// Shared log-callback type for sweep progress messages.
pub type SweepLog = Arc<dyn Fn(&str) + Send + Sync>;

/// The sweep runner. Construct with [`Sweep::new`], configure with the
/// builder methods, execute with [`Sweep::run`].
pub struct Sweep {
    name: String,
    jobs: usize,
    timing: Option<PathBuf>,
    log: Option<SweepLog>,
    audit: bool,
    wall_clock: bool,
}

impl Sweep {
    /// A sweep named `name` using every available core and the default
    /// timing sink. Honors the `SWEEP_PROGRESS` environment variable by
    /// installing a stderr progress logger, and `SWEEP_AUDIT` (the
    /// `repro --audit` flag) by running every row under the runtime
    /// invariant auditor.
    pub fn new(name: impl Into<String>) -> Sweep {
        let log: Option<SweepLog> = match std::env::var("SWEEP_PROGRESS") {
            Ok(v) if v != "0" => Some(Arc::new(|msg: &str| eprintln!("{msg}"))),
            _ => None,
        };
        let audit = matches!(std::env::var("SWEEP_AUDIT"), Ok(v) if v != "0");
        let wall_clock = matches!(std::env::var("SWEEP_TIMING_WALL"), Ok(v) if v != "0");
        Sweep {
            name: name.into(),
            jobs: par::available_jobs(),
            timing: Some(default_timing_path()),
            log,
            audit,
            wall_clock,
        }
    }

    /// Builder: worker count (0 means "available parallelism").
    pub fn jobs(mut self, jobs: usize) -> Sweep {
        self.jobs = if jobs == 0 { par::available_jobs() } else { jobs };
        self
    }

    /// Builder: write timing records to a specific file.
    pub fn timing_path(mut self, path: PathBuf) -> Sweep {
        self.timing = Some(path);
        self
    }

    /// Builder: disable timing records (unit tests, throwaway sweeps).
    pub fn timing_off(mut self) -> Sweep {
        self.timing = None;
        self
    }

    /// Builder: attach a progress log callback.
    pub fn with_log(mut self, log: SweepLog) -> Sweep {
        self.log = Some(log);
        self
    }

    /// Builder: include wall-clock `elapsed_ns` fields in the timing
    /// records. Off by default (or via the `SWEEP_TIMING_WALL` environment
    /// variable) so that two identical sweeps write byte-identical timing
    /// files — wall time is the only nondeterministic field, and keeping it
    /// out by default means timing artifacts never diff golden outputs.
    pub fn wall_clock(mut self, on: bool) -> Sweep {
        self.wall_clock = on;
        self
    }

    /// Builder: run every row under the runtime invariant auditor
    /// ([`simcore::trace::Auditor`]). An invariant violation panics inside
    /// the job, so it surfaces as that row's `Err` outcome without
    /// poisoning the rest of the sweep.
    pub fn audit(mut self, on: bool) -> Sweep {
        self.audit = on;
        self
    }

    /// Run the job list. Rows come back in job-list order regardless of
    /// worker count or completion order.
    pub fn run(self, jobs_list: Vec<SweepJob>) -> SweepReport {
        let total = jobs_list.len();
        let labels: Vec<String> = jobs_list.iter().map(|j| j.label.clone()).collect();
        let audit = self.audit;
        let configs: Vec<SimConfig> = jobs_list
            .into_iter()
            .map(|j| if audit { j.config.with_audit(true) } else { j.config })
            .collect();

        let name = self.name;
        let log = self.log;
        let progress = |p: Progress| {
            if let Some(log) = &log {
                log(&format!(
                    "sweep {name}: [{done}/{total}] {label} {status} in {ms:.0} ms",
                    done = p.done,
                    total = p.total,
                    label = labels[p.index],
                    status = if p.ok { "done" } else { "PANICKED" },
                    ms = p.elapsed.as_secs_f64() * 1e3,
                ));
            }
        };

        // simlint: allow(determinism): sweep wall time feeds the (gated) timing sidecar only
        let t0 = Instant::now();
        let reports = par::map(
            configs,
            self.jobs,
            |_i, config| Network::new(config).run(),
            Some(&progress),
        );
        let elapsed_ns = t0.elapsed().as_nanos() as u64;

        let rows: Vec<SweepRow> = reports
            .into_iter()
            .zip(labels)
            .map(|(r, label)| SweepRow {
                index: r.index,
                label,
                outcome: match r.outcome {
                    par::JobOutcome::Ok(result) => Ok(result),
                    par::JobOutcome::Panicked(msg) => Err(msg),
                },
                elapsed_ns: r.elapsed.as_nanos() as u64,
            })
            .collect();

        let report = SweepReport {
            name,
            jobs: self.jobs,
            rows,
            elapsed_ns,
        };
        if let Some(path) = &self.timing {
            if let Err(e) = write_timing(path, &report, total, self.wall_clock) {
                eprintln!("sweep {}: cannot write {}: {e}", report.name, path.display());
            }
        }
        report
    }
}

/// Append JSON-lines timing records: one object per job plus a summary
/// line per sweep. Each line is a single `write` call, so concurrent
/// sweeps appending to the same file do not interleave within a line.
///
/// The wall-clock `elapsed_ns` fields are emitted only when `wall` is set
/// ([`Sweep::wall_clock`] / `SWEEP_TIMING_WALL`): everything else in a
/// record is a pure function of the job list, so without them two runs of
/// the same sweep produce byte-identical files.
fn write_timing(path: &PathBuf, report: &SweepReport, total: usize, wall: bool) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
    for row in &report.rows {
        let wall_field =
            if wall { format!(",\"elapsed_ns\":{}", row.elapsed_ns) } else { String::new() };
        let line = format!(
            "{{\"sweep\":\"{}\",\"index\":{},\"label\":\"{}\",\"ok\":{}{}}}\n",
            json_escape(&report.name),
            row.index,
            json_escape(&row.label),
            row.outcome.is_ok(),
            wall_field,
        );
        f.write_all(line.as_bytes())?;
    }
    let wall_field =
        if wall { format!(",\"elapsed_ns\":{}", report.elapsed_ns) } else { String::new() };
    let summary = format!(
        "{{\"sweep\":\"{}\",\"jobs\":{},\"total\":{},\"panics\":{}{}}}\n",
        json_escape(&report.name),
        report.jobs,
        total,
        report.panics(),
        wall_field,
    );
    f.write_all(summary.as_bytes())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// A seeded CCA constructor with a report name: the grid's algorithm axis.
#[derive(Clone)]
pub struct CcaSpec {
    /// Short name for labels ("bbr", "delay-aimd", …).
    pub name: String,
    /// Constructor; the seed decorrelates any internal randomness.
    pub mk: Arc<dyn Fn(u64) -> BoxCca + Send + Sync>,
}

impl CcaSpec {
    /// Name a constructor.
    pub fn new(name: impl Into<String>, mk: impl Fn(u64) -> BoxCca + Send + Sync + 'static) -> CcaSpec {
        CcaSpec {
            name: name.into(),
            mk: Arc::new(mk),
        }
    }
}

/// One point of an expanded grid.
#[derive(Clone, Debug)]
pub struct GridPoint {
    /// CCA name.
    pub cca: String,
    /// Bottleneck rate.
    pub rate: Rate,
    /// Propagation RTT of both flows.
    pub rm: Dur,
    /// Jitter bound on flow 0's path (`ZERO` = clean).
    pub jitter: Dur,
    /// Scenario seed (CCA phasing and jitter stream derive from it).
    pub seed: u64,
}

impl GridPoint {
    /// The point's row label: `cca/rate/rtt/jitter/seed`.
    pub fn label(&self) -> String {
        format!(
            "{}/r{:.0}/rtt{}/j{}/s{}",
            self.cca,
            self.rate.mbps(),
            self.rm.as_millis_f64(),
            self.jitter.as_millis_f64(),
            self.seed
        )
    }
}

/// A declarative scenario grid: the cartesian product of CCA constructors,
/// link rates, propagation RTTs, jitter bounds and seeds, expanded in that
/// (row-major) order into two-flow asymmetric-jitter scenarios.
pub struct ScenarioSpec {
    /// Sweep name (tags labels and timing records).
    pub name: String,
    /// The algorithm axis.
    pub ccas: Vec<CcaSpec>,
    /// Bottleneck rates.
    pub rates: Vec<Rate>,
    /// Propagation RTTs.
    pub rtts: Vec<Dur>,
    /// Jitter bounds applied to flow 0 (`ZERO` entries mean both clean).
    pub jitters: Vec<Dur>,
    /// Scenario seeds.
    pub seeds: Vec<u64>,
    /// Simulated duration of every point.
    pub duration: Dur,
    /// Series decimation interval of every point.
    pub sample_every: Dur,
}

impl ScenarioSpec {
    /// An empty grid running 30-second scenarios at 10 ms decimation.
    pub fn new(name: impl Into<String>) -> ScenarioSpec {
        ScenarioSpec {
            name: name.into(),
            ccas: Vec::new(),
            rates: Vec::new(),
            rtts: Vec::new(),
            jitters: Vec::new(),
            seeds: vec![0],
            duration: Dur::from_secs(30),
            sample_every: Dur::from_millis(10),
        }
    }

    /// Builder: add a CCA constructor.
    pub fn cca(mut self, spec: CcaSpec) -> ScenarioSpec {
        self.ccas.push(spec);
        self
    }

    /// Builder: the rate axis, in Mbit/s.
    pub fn rates_mbps(mut self, rates: &[f64]) -> ScenarioSpec {
        self.rates = rates.iter().map(|&m| Rate::from_mbps(m)).collect();
        self
    }

    /// Builder: the RTT axis, in milliseconds.
    pub fn rtts_ms(mut self, rtts: &[u64]) -> ScenarioSpec {
        self.rtts = rtts.iter().map(|&m| Dur::from_millis(m)).collect();
        self
    }

    /// Builder: the jitter axis, in milliseconds (0 = clean paths).
    pub fn jitters_ms(mut self, jitters: &[u64]) -> ScenarioSpec {
        self.jitters = jitters.iter().map(|&m| Dur::from_millis(m)).collect();
        self
    }

    /// Builder: the seed axis.
    pub fn seeds(mut self, seeds: &[u64]) -> ScenarioSpec {
        self.seeds = seeds.to_vec();
        self
    }

    /// Builder: simulated duration per point.
    pub fn duration(mut self, d: Dur) -> ScenarioSpec {
        self.duration = d;
        self
    }

    /// Builder: series decimation per point.
    pub fn sample_every(mut self, every: Dur) -> ScenarioSpec {
        self.sample_every = every;
        self
    }

    /// The expanded grid, row-major: cca → rate → rtt → jitter → seed.
    pub fn points(&self) -> Vec<(CcaSpec, GridPoint)> {
        let mut out = Vec::new();
        for cca in &self.ccas {
            for &rate in &self.rates {
                for &rm in &self.rtts {
                    for &jitter in &self.jitters {
                        for &seed in &self.seeds {
                            out.push((
                                cca.clone(),
                                GridPoint {
                                    cca: cca.name.clone(),
                                    rate,
                                    rm,
                                    jitter,
                                    seed,
                                },
                            ));
                        }
                    }
                }
            }
        }
        out
    }

    /// Expand every point into a labelled two-flow scenario: flow 0 carries
    /// the jitter (rng derived from the seed), flow 1 is clean; both run the
    /// point's CCA with decorrelated seeds on an ample-buffer link.
    pub fn expand(&self) -> Vec<SweepJob> {
        self.points()
            .into_iter()
            .map(|(cca, p)| {
                let link = LinkConfig::ample_buffer(p.rate);
                let mut jittered = FlowConfig::bulk((cca.mk)(p.seed * 2 + 1), p.rm);
                if p.jitter > Dur::ZERO {
                    jittered = jittered.with_jitter(Jitter::Random {
                        max: p.jitter,
                        rng: Xoshiro256::new(p.seed * 31 + 7),
                    });
                }
                let clean = FlowConfig::bulk((cca.mk)(p.seed * 2 + 2), p.rm);
                let config = SimConfig::new(link, vec![jittered, clean], self.duration)
                    .with_sample_every(self.sample_every);
                SweepJob::new(p.label(), config)
            })
            .collect()
    }

    /// Expand and run the grid across `jobs` workers.
    pub fn run(&self, jobs: usize) -> SweepReport {
        Sweep::new(self.name.clone()).jobs(jobs).run(self.expand())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec::new("sweep-selftest")
            .cca(CcaSpec::new("const", |_s| {
                Box::new(cca::ConstCwnd::new(20 * 1500))
            }))
            .rates_mbps(&[12.0, 24.0])
            .rtts_ms(&[40])
            .jitters_ms(&[0, 5])
            .seeds(&[1, 2])
            .duration(Dur::from_secs(2))
    }

    #[test]
    fn scenario_files_lower_into_sweep_jobs() {
        // A DSL row and the equivalent hand-built job run identically in
        // one sweep (corpus entries can ride alongside grid points).
        let parsed = scenario::parse(
            r#"scenario "dsl-row" {
                 link { rate 12mbps buffer ample }
                 duration 1s
                 flow f0 { cca reno rtt 40ms }
               }"#,
        )
        .expect("parses");
        let by_hand = SimConfig::new(
            netsim::LinkConfig::ample_buffer(Rate::from_mbps(12.0)),
            vec![netsim::FlowConfig::bulk(
                Box::new(cca::NewReno::default_params()),
                Dur::from_millis(40),
            )],
            Dur::from_secs(1),
        );
        let jobs = vec![SweepJob::from_scenario(&parsed), SweepJob::new("hand", by_hand)];
        let report = Sweep::new("dsl-interop").jobs(2).timing_off().run(jobs);
        assert_eq!(report.rows[0].label, "dsl-row");
        let a = report.rows[0].outcome.as_ref().expect("dsl row runs");
        let b = report.rows[1].outcome.as_ref().expect("hand row runs");
        assert_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
    }

    #[test]
    fn grid_expands_row_major() {
        let spec = tiny_spec();
        let jobs = spec.expand();
        // 1 cca × 2 rates × 1 rtt × 2 jitters × 2 seeds.
        assert_eq!(jobs.len(), 8);
        assert_eq!(jobs[0].label, "const/r12/rtt40/j0/s1");
        assert_eq!(jobs[1].label, "const/r12/rtt40/j0/s2");
        assert_eq!(jobs[2].label, "const/r12/rtt40/j5/s1");
        assert_eq!(jobs[7].label, "const/r24/rtt40/j5/s2");
        // Every point is the two-flow topology.
        assert!(jobs.iter().all(|j| j.config.flows.len() == 2));
    }

    #[test]
    fn sweep_rows_are_ordered_and_complete() {
        let spec = tiny_spec();
        let report = Sweep::new("selftest").jobs(4).timing_off().run(spec.expand());
        assert_eq!(report.rows.len(), 8);
        assert_eq!(report.panics(), 0);
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.index, i);
            assert!(row.result().flows[0].total_delivered() > 0, "{}", row.label);
        }
    }

    #[test]
    fn cloned_job_list_runs_twice_identically() {
        let jobs = tiny_spec().expand();
        let a = Sweep::new("a").jobs(2).timing_off().run(jobs.clone());
        let b = Sweep::new("b").jobs(3).timing_off().run(jobs);
        for (ra, rb) in a.rows.iter().zip(&b.rows) {
            assert_eq!(ra.label, rb.label);
            assert_eq!(
                ra.result().flows[0].sent_bytes,
                rb.result().flows[0].sent_bytes
            );
        }
    }

    /// A CCA that diverges (panics) on its first acknowledgement — the
    /// "one scenario poisons the sweep" failure mode the engine isolates.
    #[derive(Clone)]
    struct DivergingCca;

    impl cca::CongestionControl for DivergingCca {
        fn on_ack(&mut self, _ev: &cca::AckEvent) {
            panic!("scenario diverged");
        }
        fn on_loss(&mut self, _ev: &cca::LossEvent) {}
        fn cwnd(&self) -> u64 {
            10 * 1500
        }
        fn pacing_rate(&self) -> Option<Rate> {
            None
        }
        fn name(&self) -> &'static str {
            "diverging"
        }
        fn clone_box(&self) -> BoxCca {
            Box::new(self.clone())
        }
    }

    #[test]
    fn panicking_scenario_reports_without_poisoning() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let rm = Dur::from_millis(40);
        let good = |label: &str| {
            SweepJob::new(
                label,
                SimConfig::new(
                    link,
                    vec![FlowConfig::bulk(Box::new(cca::ConstCwnd::new(10 * 1500)), rm)],
                    Dur::from_secs(1),
                ),
            )
        };
        let bad = SweepJob::new(
            "bad",
            SimConfig::new(
                link,
                vec![FlowConfig::bulk(Box::new(DivergingCca), rm)],
                Dur::from_secs(1),
            ),
        );
        let report = Sweep::new("panic-isolation")
            .jobs(2)
            .timing_off()
            .run(vec![good("good-0"), bad, good("good-2")]);
        assert_eq!(report.panics(), 1);
        assert!(report.rows[0].outcome.is_ok());
        match &report.rows[1].outcome {
            Err(msg) => assert!(msg.contains("diverged"), "{msg}"),
            Ok(_) => panic!("diverging scenario should have panicked"),
        }
        assert!(report.rows[2].outcome.is_ok(), "panic must not poison later jobs");
        assert!(report.rows[2].result().flows[0].total_delivered() > 0);
    }

    #[test]
    fn audited_sweep_matches_unaudited() {
        // The auditor must pass on every grid row and change nothing.
        let jobs = tiny_spec().expand();
        let plain = Sweep::new("plain").jobs(2).timing_off().run(jobs.clone());
        let audited = Sweep::new("audited").jobs(2).timing_off().audit(true).run(jobs);
        assert_eq!(audited.panics(), 0);
        for (ra, rb) in plain.rows.iter().zip(&audited.rows) {
            assert_eq!(
                ra.result().flows[0].sent_bytes,
                rb.result().flows[0].sent_bytes,
                "{}",
                ra.label
            );
            assert_eq!(
                ra.result().flows[0].total_delivered(),
                rb.result().flows[0].total_delivered(),
                "{}",
                ra.label
            );
        }
    }

    #[test]
    fn timing_records_are_json_lines_and_deterministic_by_default() {
        let dir = std::env::temp_dir().join("sweep_selftest_timing");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.json");
        let report = Sweep::new("timed")
            .jobs(2)
            .timing_path(path.clone())
            .wall_clock(false)
            .run(tiny_spec().expand());
        assert_eq!(report.rows.len(), 8);
        let text = std::fs::read_to_string(&path).unwrap();
        // 8 job lines + 1 summary line.
        assert_eq!(text.lines().count(), 9, "{text}");
        assert!(text.contains("\"sweep\":\"timed\""));
        assert!(text.contains("\"label\":\"const/r12/rtt40/j0/s1\""));
        assert!(text.contains("\"jobs\":2"));
        // Wall-clock fields are opt-in; by default the file is a pure
        // function of the job list.
        assert!(!text.contains("elapsed_ns"), "{text}");

        // Re-running the identical sweep appends byte-identical records.
        let _ = Sweep::new("timed")
            .jobs(3)
            .timing_path(path.clone())
            .wall_clock(false)
            .run(tiny_spec().expand());
        let text2 = std::fs::read_to_string(&path).unwrap();
        let (first, second) = text2.split_at(text.len());
        assert_eq!(first, text);
        assert_eq!(second.replace("\"jobs\":3", "\"jobs\":2"), text);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wall_clock_timing_is_opt_in() {
        let dir = std::env::temp_dir().join("sweep_selftest_timing_wall");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sweep.json");
        let _ = Sweep::new("walled")
            .jobs(2)
            .timing_path(path.clone())
            .wall_clock(true)
            .run(tiny_spec().expand());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 9, "{text}");
        assert!(text.lines().all(|l| l.contains("\"elapsed_ns\":")), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn progress_callback_fires_per_job() {
        use std::sync::Mutex;
        let seen: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let report = Sweep::new("logged")
            .jobs(2)
            .timing_off()
            .with_log(Arc::new(move |msg: &str| sink.lock().unwrap().push(msg.to_string())))
            .run(tiny_spec().expand());
        assert_eq!(seen.lock().unwrap().len(), report.rows.len());
        assert!(seen.lock().unwrap().iter().all(|m| m.contains("sweep logged:")));
    }
}

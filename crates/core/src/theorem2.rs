//! Theorem 2: any deterministic CCA whose converged delay on some ideal
//! path satisfies `d_max(C) ≤ D` can be driven to **arbitrarily low
//! utilization** by a path with jitter bound `D`.
//!
//! Construction (paper §6.1): record the CCA's delay trajectory `d(t)` on
//! an ideal path of rate `C`. Then run it on a much faster link `C′ ≫ C`
//! whose jitter element reproduces `d(t)` entirely out of non-congestive
//! delay (possible because `d(t) ≤ d_max(C) ≤ D` while queueing on `C′` is
//! negligible). The deterministic CCA sees the same delays, sends at the
//! same ≈`C` rate, and utilizes only `C/C′` of the link.

use crate::runner::{run_ideal_path, RunSpec};
use cca::CcaFactory;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::units::{Dur, Rate, Time};

/// Configuration for the Theorem 2 construction.
#[derive(Clone, Copy, Debug)]
pub struct Theorem2Config {
    /// The rate `C` of the recording run.
    pub c: Rate,
    /// Propagation RTT.
    pub rm: Dur,
    /// The fast link is `c_prime_factor × C`.
    pub c_prime_factor: f64,
    /// Duration of both runs.
    pub duration: Dur,
}

impl Theorem2Config {
    /// Quick defaults: C = 12 Mbit/s, C′ = 20×C, Rm = 40 ms.
    pub fn quick() -> Theorem2Config {
        Theorem2Config {
            c: Rate::from_mbps(12.0),
            rm: Dur::from_millis(40),
            c_prime_factor: 20.0,
            duration: Dur::from_secs(20),
        }
    }
}

/// Outcome of the construction.
#[derive(Clone, Copy, Debug)]
pub struct Theorem2Report {
    /// Throughput on the recording run (≈ C).
    pub base_mbps: f64,
    /// The fast link's rate `C′`.
    pub c_prime_mbps: f64,
    /// Throughput achieved on the fast link under emulated delay.
    pub emulated_mbps: f64,
    /// `D` used: the max delay of the recorded trajectory.
    pub d_bound: Dur,
    /// Utilization of the fast link (→ `1/c_prime_factor`).
    pub utilization: f64,
    /// Packets clamped during emulation.
    pub clamped_packets: u64,
}

/// Run the Theorem 2 construction.
pub fn run_theorem2(factory: &CcaFactory, cfg: Theorem2Config) -> Theorem2Report {
    // Record d(t) on the slow ideal path.
    let base = run_ideal_path(factory(), RunSpec::new(cfg.c, cfg.rm, cfg.duration));
    let d_max = base
        .rtt
        .max_in(Time::ZERO, base.rtt.end_time())
        .unwrap_or(cfg.rm.as_secs_f64());
    let d_bound = Dur::from_secs_f64(d_max);

    // Replay on the fast link: jitter reproduces the whole of d(t).
    let c_prime = cfg.c.mul_f64(cfg.c_prime_factor);
    let link = LinkConfig::ample_buffer(c_prime);
    let flow = FlowConfig::bulk(factory(), cfg.rm).with_jitter(Jitter::TargetRtt {
        target_rtt: base.rtt.clone(),
        max: d_bound,
    });
    let result = Network::new(SimConfig::new(link, vec![flow], cfg.duration)).run();
    let emulated = result.flows[0].throughput_at(result.end);

    Theorem2Report {
        base_mbps: base.throughput.mbps(),
        c_prime_mbps: c_prime.mbps(),
        emulated_mbps: emulated.mbps(),
        d_bound,
        utilization: emulated.bytes_per_sec() / c_prime.bytes_per_sec(),
        clamped_packets: result.total_jitter_clamps(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::factory;

    #[test]
    fn vegas_underutilizes_fast_link() {
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let r = run_theorem2(&f, Theorem2Config::quick());
        // On the slow path Vegas fills ~12 Mbit/s...
        assert!(r.base_mbps > 10.0, "base={}", r.base_mbps);
        // ...and on the 240 Mbit/s link under emulated delay it stays near
        // the same absolute rate → utilization collapses.
        assert!(
            r.emulated_mbps < 2.5 * r.base_mbps,
            "emulated={} base={}",
            r.emulated_mbps,
            r.base_mbps
        );
        assert!(r.utilization < 0.15, "util={}", r.utilization);
    }
}

//! Theorem 3 (the absolute upper bound, §6.5 / Appendix B): in the
//! **strong model** — where the adversary can vary the link rate (and hence
//! the queueing delay) arbitrarily — any deterministic, `f`-efficient,
//! delay-*bounding* CCA starves, even without delay-convergence.
//!
//! Construction: run the CCA against a delay trace `d₀(t)` (its own
//! behaviour on an ideal link of rate `λ`). Build successive traces
//! `d_{k+1}(t) = max(Rm, d_k(t) − D)`. If any adjacent pair of traces
//! yields throughputs a factor ≥ `s` apart, the two traces can be combined
//! into one 2-flow network (the shared queue contributes `d_{k+1}`, the
//! jitter element adds `D` to one flow only) — starvation. Otherwise the
//! delay eventually pins at `Rm`, where an `f`-efficient CCA's rate grows
//! without bound, so somewhere along the way the ratio must have jumped.

use crate::runner::{run_ideal_path, RunSpec};
use cca::CcaFactory;
use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
use simcore::series::TimeSeries;
use simcore::units::{Dur, Rate, Time};

/// Configuration for the Theorem 3 construction.
#[derive(Clone, Copy, Debug)]
pub struct Theorem3Config {
    /// Base rate `λ` for the first trace.
    pub lambda: Rate,
    /// Propagation RTT.
    pub rm: Dur,
    /// The jitter step `D` subtracted each iteration.
    pub d: Dur,
    /// Target ratio `s`.
    pub s: f64,
    /// Rate of the big replay link (must dwarf any rate the CCA reaches).
    pub replay_rate: Rate,
    /// Duration of each trace.
    pub duration: Dur,
    /// Maximum iterations.
    pub max_iters: usize,
}

impl Theorem3Config {
    /// Quick defaults: λ = 8 Mbit/s, Rm = 40 ms, D = 2 ms, s = 2.
    pub fn quick() -> Theorem3Config {
        Theorem3Config {
            lambda: Rate::from_mbps(8.0),
            rm: Dur::from_millis(40),
            d: Dur::from_millis(2),
            s: 2.0,
            replay_rate: Rate::from_mbps(2000.0),
            duration: Dur::from_secs(15),
            max_iters: 16,
        }
    }
}

/// One iteration's outcome.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Iteration index `k`.
    pub k: usize,
    /// Throughput under trace `d_k`, Mbit/s.
    pub throughput_mbps: f64,
    /// Max delay of `d_k`, seconds.
    pub max_delay: f64,
}

/// Outcome of the construction.
pub struct Theorem3Report {
    /// Per-iteration results.
    pub steps: Vec<TraceStep>,
    /// The adjacent pair `(k, k+1)` whose throughput ratio first reached
    /// `s`, if any.
    pub starving_pair: Option<(usize, usize)>,
    /// Ratio achieved by that pair.
    pub achieved_ratio: f64,
}

fn subtract_floor(trace: &TimeSeries, d: Dur, floor: Dur) -> TimeSeries {
    let mut out = TimeSeries::new();
    for &(t, v) in trace.points() {
        out.push(t, (v - d.as_secs_f64()).max(floor.as_secs_f64()));
    }
    out
}

/// Run the CCA against an arbitrary imposed-delay trace: a huge link (so
/// queueing ≈ 0) whose jitter element recreates `trace` exactly. In the
/// strong model the adversary owns the queue, so the jitter cap is
/// unbounded here.
fn run_against_trace(
    factory: &CcaFactory,
    trace: &TimeSeries,
    rm: Dur,
    replay_rate: Rate,
    duration: Dur,
) -> f64 {
    let link = LinkConfig::ample_buffer(replay_rate);
    let flow = FlowConfig::bulk(factory(), rm).with_jitter(Jitter::TargetRtt {
        target_rtt: trace.clone(),
        max: Dur::MAX,
    });
    let result = Network::new(SimConfig::new(link, vec![flow], duration)).run();
    result.flows[0].throughput_at(result.end).mbps()
}

/// Run the Theorem 3 construction.
pub fn run_theorem3(factory: &CcaFactory, cfg: Theorem3Config) -> Theorem3Report {
    // Trace 0: the CCA's own behaviour on an ideal link of rate λ.
    let base = run_ideal_path(factory(), RunSpec::new(cfg.lambda, cfg.rm, cfg.duration));
    let mut trace = base.rtt.clone();
    let mut steps = vec![TraceStep {
        k: 0,
        throughput_mbps: base.throughput.mbps(),
        max_delay: trace.max_in(Time::ZERO, trace.end_time()).unwrap_or(0.0),
    }];
    let mut starving_pair = None;
    let mut achieved = 1.0f64;

    for k in 1..=cfg.max_iters {
        let next = subtract_floor(&trace, cfg.d, cfg.rm);
        let tput = run_against_trace(factory, &next, cfg.rm, cfg.replay_rate, cfg.duration);
        let max_delay = next.max_in(Time::ZERO, next.end_time()).unwrap_or(0.0);
        let prev = steps.last().expect("steps seeded with the k=0 entry").throughput_mbps;
        steps.push(TraceStep {
            k,
            throughput_mbps: tput,
            max_delay,
        });
        let ratio = if prev > 0.0 { tput / prev } else { f64::INFINITY };
        if ratio >= cfg.s && starving_pair.is_none() {
            starving_pair = Some((k - 1, k));
            achieved = ratio;
        }
        // Delay pinned at Rm: nothing more to subtract.
        if max_delay <= cfg.rm.as_secs_f64() + 1e-9 {
            break;
        }
        trace = next;
    }
    Theorem3Report {
        steps,
        starving_pair,
        achieved_ratio: achieved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::factory;

    #[test]
    fn subtract_floor_math() {
        let mut t = TimeSeries::new();
        t.push(Time::ZERO, 0.050);
        t.push(Time::from_millis(1), 0.041);
        let out = subtract_floor(&t, Dur::from_millis(2), Dur::from_millis(40));
        assert_eq!(out.points()[0].1, 0.048);
        assert_eq!(out.points()[1].1, 0.040); // floored at Rm
    }

    #[test]
    fn vegas_strong_model_finds_starving_pair() {
        // Vegas reads delay-above-Rm as queueing: each D subtraction makes
        // it believe there is less congestion, so its rate grows until an
        // adjacent pair is ≥ s apart.
        let f = factory(|| Box::new(cca::Vegas::default_params()));
        let r = run_theorem3(&f, Theorem3Config::quick());
        assert!(
            r.starving_pair.is_some(),
            "steps: {:?}",
            r.steps
                .iter()
                .map(|s| s.throughput_mbps)
                .collect::<Vec<_>>()
        );
        assert!(r.achieved_ratio >= 2.0);
    }
}

//! Canonical trace scenarios: four small, fixed configurations that
//! exercise every event class the trace subsystem emits.
//!
//! These back two consumers:
//!
//! * the golden-trace regression suite (`tests/golden_traces.rs`), which
//!   pins a per-event-class digest of each scenario's full event stream —
//!   any change to simulator scheduling, transport behaviour, or CCA
//!   dynamics shows up as a digest mismatch;
//! * `repro trace <scenario>`, which streams the same scenarios as
//!   JSON-lines for ad-hoc inspection.
//!
//! The configurations are deliberately frozen: durations, rates, seeds and
//! CCA parameters are part of the golden contract. Behaviour changes that
//! are *intended* re-record the goldens (`BLESS=1`); anything else is a
//! regression.

use netsim::{FlowConfig, Jitter, LinkConfig, SimConfig};
use simcore::rng::Xoshiro256;
use simcore::units::{Dur, Rate};

/// Names of the canonical scenarios, in registry order.
pub const CANONICAL: &[&str] = &["reno-ideal", "copa-jitter", "bbr-two-flow", "vivace-lossy"];

/// Build a canonical scenario by name. `None` for unknown names.
///
/// Every scenario is deterministic and runs in well under a second:
///
/// * `reno-ideal` — one NewReno flow on an ample-buffer ideal path
///   (slow start, congestion avoidance, ACK clocking; no loss, no jitter).
/// * `copa-jitter` — one Copa flow through 10 ms of random jitter
///   (jitter-hold/release events, delay-sensitive cwnd dynamics).
/// * `bbr-two-flow` — two BBR flows share a 2-BDP buffer (queue build-up,
///   tail drops, retransmissions, two-flow FIFO interleaving).
/// * `vivace-lossy` — one PCC Vivace datagram flow with 2% Bernoulli loss
///   (SACK-style per-packet ACKs, loss events without retransmission).
pub fn canonical_scenario(name: &str) -> Option<SimConfig> {
    let cfg = match name {
        "reno-ideal" => {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
            let flow = FlowConfig::bulk(Box::new(cca::NewReno::default_params()), Dur::from_millis(40));
            SimConfig::new(link, vec![flow], Dur::from_secs(5))
        }
        "copa-jitter" => {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
            let flow = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(40))
                .with_jitter(Jitter::Random {
                    max: Dur::from_millis(10),
                    rng: Xoshiro256::new(42),
                });
            SimConfig::new(link, vec![flow], Dur::from_secs(5))
        }
        "bbr-two-flow" => {
            let rate = Rate::from_mbps(24.0);
            let rm = Dur::from_millis(40);
            // 1 BDP of buffer: BBR's startup overshoot (2 flows probing at
            // once) tail-drops, so the canonical set covers drop events.
            let link = LinkConfig::bdp_buffer(rate, rm, 1.0);
            let flows = vec![
                FlowConfig::bulk(Box::new(cca::Bbr::default_params()), rm),
                FlowConfig::bulk(Box::new(cca::Bbr::default_params()), rm),
            ];
            SimConfig::new(link, flows, Dur::from_secs(5))
        }
        "vivace-lossy" => {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
            let flow = FlowConfig::bulk(Box::new(cca::Vivace::default_params()), Dur::from_millis(40))
                .datagram()
                .with_loss(0.02, 7);
            SimConfig::new(link, vec![flow], Dur::from_secs(5))
        }
        _ => return None,
    };
    Some(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use simcore::trace::{RingSink, TraceSink};
    use std::sync::Arc;

    #[test]
    fn every_canonical_name_resolves() {
        for name in CANONICAL {
            assert!(canonical_scenario(name).is_some(), "{name}");
        }
        assert!(canonical_scenario("no-such-scenario").is_none());
    }

    #[test]
    fn canonical_scenarios_pass_audit_and_emit_all_core_classes() {
        // Union across the four scenarios must cover the full event
        // vocabulary (drop/retransmit/rto come from bbr-two-flow and
        // vivace-lossy; jitter classes appear everywhere).
        let mut seen: std::collections::BTreeSet<&'static str> = Default::default();
        for name in CANONICAL {
            let ring = RingSink::new(16);
            let probe = ring.clone();
            let cfg = canonical_scenario(name)
                .unwrap()
                .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
                .with_audit(true);
            let r = Network::new(cfg).run();
            assert!(r.flows[0].total_delivered() > 0, "{name}");
            let digest = ring.digest();
            for class in ["send", "enqueue", "dequeue", "jitter-hold", "jitter-release", "ack", "cwnd", "probe", "run-end"] {
                assert!(digest.count(class) > 0, "{name} missing {class}");
            }
            for (class, _) in digest.classes() {
                seen.insert(class);
            }
        }
        for class in ["drop", "retransmit", "rto"] {
            assert!(seen.contains(class), "no canonical scenario emits {class}");
        }
    }
}

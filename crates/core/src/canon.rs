//! Canonical trace scenarios: five fixed configurations that exercise
//! every event class the trace subsystem emits.
//!
//! The scenarios live as `.scn` files in `tests/scenarios/` — the
//! scenario-DSL corpus — compiled in via `include_str!` so this crate
//! stays hermetic. They back three consumers:
//!
//! * the golden-trace regression suite (`tests/golden_traces.rs`), which
//!   pins a per-event-class digest of each scenario's full event stream —
//!   any change to simulator scheduling, transport behaviour, CCA
//!   dynamics, *or the DSL compiler* shows up as a digest mismatch;
//! * `repro trace <scenario>`, which streams the same scenarios as
//!   JSON-lines for ad-hoc inspection;
//! * the scenario fuzzer (`repro fuzz`), which uses them as its seed
//!   corpus.
//!
//! The configurations are deliberately frozen: durations, rates, seeds and
//! CCA parameters are part of the golden contract. Behaviour changes that
//! are *intended* re-record the goldens (`BLESS=1`); anything else is a
//! regression.

use netsim::SimConfig;

/// Names of the canonical scenarios, in registry order.
pub const CANONICAL: &[&str] =
    &["reno-ideal", "copa-jitter", "bbr-two-flow", "vivace-lossy", "workload-1k"];

/// The committed `.scn` sources, embedded so the canon is available
/// without filesystem access. Same order as [`CANONICAL`].
const SOURCES: &[(&str, &str)] = &[
    ("reno-ideal", include_str!("../../../tests/scenarios/reno-ideal.scn")),
    ("copa-jitter", include_str!("../../../tests/scenarios/copa-jitter.scn")),
    ("bbr-two-flow", include_str!("../../../tests/scenarios/bbr-two-flow.scn")),
    ("vivace-lossy", include_str!("../../../tests/scenarios/vivace-lossy.scn")),
    ("workload-1k", include_str!("../../../tests/scenarios/workload-1k.scn")),
];

/// The `.scn` source of a canonical scenario. `None` for unknown names.
pub fn canonical_source(name: &str) -> Option<&'static str> {
    SOURCES.iter().find(|(n, _)| *n == name).map(|(_, src)| *src)
}

/// Build a canonical scenario by name. `None` for unknown names.
///
/// Every scenario is deterministic and runs in well under a second:
///
/// * `reno-ideal` — one NewReno flow on an ample-buffer ideal path
///   (slow start, congestion avoidance, ACK clocking; no loss, no jitter).
/// * `copa-jitter` — one Copa flow through 10 ms of random jitter
///   (jitter-hold/release events, delay-sensitive cwnd dynamics).
/// * `bbr-two-flow` — two BBR flows share a 1-BDP buffer (queue build-up,
///   tail drops, retransmissions, two-flow FIFO interleaving).
/// * `vivace-lossy` — one PCC Vivace datagram flow with 2% Bernoulli loss
///   (SACK-style per-packet ACKs, loss events without retransmission).
/// * `workload-1k` — a 1000-flow dynamic workload: Poisson arrivals,
///   heavy-tailed Pareto sizes, NewReno through mild jitter (flow
///   arrive/complete lifecycle, population-scale FCT and fairness).
pub fn canonical_scenario(name: &str) -> Option<SimConfig> {
    let src = canonical_source(name)?;
    // The corpus is committed and covered by the golden suite; a parse
    // failure here means the checked-in file was corrupted.
    let parsed = scenario::parse(src)
        .unwrap_or_else(|e| panic!("canonical scenario `{name}` failed to parse: {e}"));
    Some(scenario::compile(&parsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::Network;
    use simcore::trace::{RingSink, TraceSink};
    use std::sync::Arc;

    #[test]
    fn every_canonical_name_resolves() {
        for name in CANONICAL {
            assert!(canonical_scenario(name).is_some(), "{name}");
        }
        assert!(canonical_scenario("no-such-scenario").is_none());
        assert!(canonical_source("no-such-scenario").is_none());
    }

    #[test]
    fn embedded_sources_match_the_files_on_disk() {
        // include_str! snapshots the corpus at compile time; this test
        // fails fast if the on-disk files drift from the embedded copies
        // without a rebuild (e.g. a stale incremental cache).
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios");
        for name in CANONICAL {
            let on_disk = std::fs::read_to_string(dir.join(format!("{name}.scn")))
                .unwrap_or_else(|e| panic!("{name}.scn: {e}"));
            assert_eq!(canonical_source(name), Some(on_disk.as_str()), "{name}");
        }
    }

    #[test]
    fn canonical_scenarios_pass_audit_and_emit_all_core_classes() {
        // Union across the canonical scenarios must cover the full event
        // vocabulary (drop/retransmit/rto come from bbr-two-flow and
        // vivace-lossy; jitter classes appear everywhere).
        let mut seen: std::collections::BTreeSet<&'static str> = Default::default();
        for name in CANONICAL {
            let ring = RingSink::new(16);
            let probe = ring.clone();
            let cfg = canonical_scenario(name)
                .unwrap()
                .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
                .with_audit(true);
            let r = Network::new(cfg).run();
            assert!(r.flows[0].total_delivered() > 0, "{name}");
            let digest = ring.digest();
            for class in ["send", "enqueue", "dequeue", "jitter-hold", "jitter-release", "ack", "cwnd", "probe", "run-end"] {
                assert!(digest.count(class) > 0, "{name} missing {class}");
            }
            for (class, _) in digest.classes() {
                seen.insert(class);
            }
        }
        for class in ["drop", "retransmit", "rto"] {
            assert!(seen.contains(class), "no canonical scenario emits {class}");
        }
    }
}

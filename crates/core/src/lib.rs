//! # starvation — the paper's contribution, as a library
//!
//! Machinery formalizing and reproducing *Starvation in End-to-End
//! Congestion Control* (Arun, Alizadeh, Balakrishnan — SIGCOMM 2022):
//!
//! * [`glossary`] — Table 1's symbols, documented in one place.
//! * [`runner`] — single-flow ideal-path runs (Definition 1's setting),
//!   recording RTT and rate trajectories.
//! * [`convergence`] — detects the converged region and measures
//!   `d_min(C)`, `d_max(C)`, `δ(C)` (Definition 1, Figure 1).
//! * [`profiler`] — rate–delay curves across a link-rate sweep
//!   (Figures 2 and 3).
//! * [`fairness`] — `s`-fairness, starvation, and `f`-efficiency checks
//!   (Definitions 2–4).
//! * [`pigeonhole`] — step 1 of Theorem 1's proof: find `C₁, C₂` with
//!   `C₂ ≥ (s/f)·C₁` whose converged delay ranges lie within an
//!   `ε`-interval (Figure 4).
//! * [`emulation`] — step 3: the shared-queue delay `d*(t)` (Eq. 5), the
//!   per-flow jitter schedules `η₁(t), η₂(t)`, and their feasibility
//!   check `0 ≤ ηᵢ ≤ D` (Figure 6).
//! * [`theorem1`] — the end-to-end starvation construction: pigeonhole →
//!   record trajectories (Figure 5) → build the 2-flow scenario → run it
//!   and measure the throughput ratio.
//! * [`theorem2`] — the under-utilization construction: any CCA with
//!   `d_max(C) ≤ D` can be driven to arbitrarily low utilization.
//! * [`theorem3`] — the strong-model iterative construction
//!   (`d_{k+1} = max(0, d_k − D)`).
//! * [`merit`] — §6.3's figure of merit `µ₊/µ₋` for the Vegas family
//!   (Eq. 1) vs the exponential mapping (Eq. 2).
//! * [`canon`] — canonical trace scenarios: four frozen configurations
//!   backing the golden-trace regression suite and `repro trace`.
//! * [`sweep`] — the parallel sweep engine: declarative scenario grids
//!   ([`sweep::ScenarioSpec`]) expanded into `SimConfig`s and executed
//!   order-preservingly across a worker pool ([`simcore::par`]), with
//!   per-job panic isolation and JSON-lines timing records.
//!
//! # Example
//!
//! Measure a CCA's delay-convergence (Definition 1) on an ideal path:
//!
//! ```
//! use simcore::units::{Dur, Rate};
//! use starvation::{analyze_convergence, run_ideal_path, RunSpec};
//!
//! let spec = RunSpec::new(Rate::from_mbps(24.0), Dur::from_millis(40), Dur::from_secs(8));
//! let run = run_ideal_path(Box::new(cca::Vegas::default_params()), spec);
//! let conv = analyze_convergence(&run.rtt, 0.5, 1e-4).expect("Vegas converges");
//! // Vegas holds a couple of packets of queue above the 40 ms floor.
//! assert!(conv.d_min >= 0.040);
//! assert!(conv.delta() < 0.010);
//! ```

pub mod canon;
pub mod convergence;
pub mod emulation;
pub mod fairness;
pub mod glossary;
pub mod merit;
pub mod pigeonhole;
pub mod profiler;
pub mod runner;
pub mod sweep;
pub mod theorem1;
pub mod theorem2;
pub mod theorem3;

pub use canon::{canonical_scenario, CANONICAL};
pub use convergence::{analyze_convergence, ConvergenceReport};
pub use emulation::{EmulationPlan, plan_emulation};
pub use fairness::{check_f_efficiency, check_s_fairness};
pub use pigeonhole::{pigeonhole_search, PigeonholeResult};
pub use profiler::{profile_rate_delay, ProfilePoint};
pub use runner::{run_ideal_path, IdealRun, RunSpec};
pub use sweep::{CcaSpec, ScenarioSpec, Sweep, SweepJob, SweepReport, SweepRow};
pub use theorem1::{run_theorem1, Theorem1Config, Theorem1Report};
pub use theorem2::{run_theorem2, Theorem2Config, Theorem2Report};
pub use theorem3::{run_theorem3, Theorem3Config, Theorem3Report};

//! Step 3 of Theorem 1's proof: the shared-queue delay `d*(t)` and the
//! per-flow jitter schedules (Equation 5, Figure 6).
//!
//! Given post-convergence delay trajectories `d̄₁(t), d̄₂(t)` recorded on
//! ideal links of rates `C₁, C₂`, the 2-flow scenario on a link of rate
//! `C₁+C₂` has common queueing+propagation delay
//!
//! ```text
//! d*(t) = (C₁·d̄₁(t) + C₂·d̄₂(t)) / (C₁+C₂) − (δ_max + ε)
//! ```
//!
//! and each flow's non-congestive delay must make up the difference:
//! `ηᵢ(t) = d̄ᵢ(t) − d*(t)`. Emulation is feasible iff `0 ≤ ηᵢ(t) ≤ D` for
//! all `t`, which the proof guarantees when `D = 2(δ_max + ε)` and both
//! trajectories stay within a common band of width `δ_max + ε`.

use simcore::series::TimeSeries;
use simcore::units::{Dur, Time};

/// The computed emulation schedule.
#[derive(Clone, Debug)]
pub struct EmulationPlan {
    /// The common queueing+propagation delay `d*(t)`, seconds.
    pub d_star: TimeSeries,
    /// Flow 1's required non-congestive delay `η₁(t)`, seconds.
    pub eta1: TimeSeries,
    /// Flow 2's required non-congestive delay `η₂(t)`, seconds.
    pub eta2: TimeSeries,
    /// The jitter bound `D` used.
    pub d_bound: f64,
    /// Number of grid points where `ηᵢ ∉ [0, D]`.
    pub violations: usize,
    /// Number of grid points where `d*(t) < Rm` — nonzero means the
    /// construction is in the proof's Case 2 (the shared queue cannot stay
    /// nonempty; use a large link and emulate with jitter alone).
    pub dstar_below_rm: usize,
    /// Largest `η` required, seconds.
    pub eta_max: f64,
    /// Smallest `η` required, seconds (negative = infeasible instant).
    pub eta_min: f64,
    /// Initial queueing delay `d*(0) − Rm` the warm start must create,
    /// seconds.
    pub initial_queue_delay: f64,
}

impl EmulationPlan {
    /// Whether every grid point satisfied `0 ≤ η ≤ D` *and* the Case 1
    /// precondition `d* ≥ Rm` held.
    pub fn feasible(&self) -> bool {
        self.violations == 0 && self.dstar_below_rm == 0
    }

    /// Whether the trajectories demand the proof's Case 2 construction
    /// (the weighted average dips below `Rm`, so the shared queue cannot
    /// produce `d*`; a much faster link with pure-jitter emulation can).
    pub fn needs_case2(&self) -> bool {
        self.dstar_below_rm > 0
    }
}

/// Compute the emulation schedule on a fixed grid.
///
/// * `d1`, `d2` — time-shifted post-convergence delay trajectories (time 0
///   = convergence instant), seconds.
/// * `c1`, `c2` — the ideal-path rates, any common unit.
/// * `delta_max`, `epsilon` — the band parameters from the pigeonhole step.
/// * `rm` — propagation RTT (for the `d* ≥ Rm` sanity check).
/// * `tick`, `n` — evaluation grid.
#[allow(clippy::too_many_arguments)] // mirrors the proof's parameter list
pub fn plan_emulation(
    d1: &TimeSeries,
    d2: &TimeSeries,
    c1: f64,
    c2: f64,
    delta_max: f64,
    epsilon: f64,
    rm: Dur,
    tick: Dur,
    n: usize,
) -> EmulationPlan {
    assert!(c1 > 0.0 && c2 > 0.0 && n > 0);
    let d_bound = 2.0 * (delta_max + epsilon);
    let w1 = c1 / (c1 + c2);
    let w2 = c2 / (c1 + c2);
    let v1 = d1.resample(Time::ZERO, tick, n);
    let v2 = d2.resample(Time::ZERO, tick, n);

    let mut d_star = TimeSeries::new();
    let mut eta1 = TimeSeries::new();
    let mut eta2 = TimeSeries::new();
    let mut violations = 0usize;
    let mut dstar_below_rm = 0usize;
    let mut eta_max = f64::MIN;
    let mut eta_min = f64::MAX;
    for i in 0..n {
        let t = Time::ZERO + Dur(tick.as_nanos() * i as u64);
        let ds = w1 * v1[i] + w2 * v2[i] - (delta_max + epsilon);
        let e1 = v1[i] - ds;
        let e2 = v2[i] - ds;
        for &e in &[e1, e2] {
            eta_max = eta_max.max(e);
            eta_min = eta_min.min(e);
            if e < -1e-9 || e > d_bound + 1e-9 {
                violations += 1;
            }
        }
        if ds < rm.as_secs_f64() - 1e-9 {
            dstar_below_rm += 1; // case-1 precondition d* ≥ Rm failed
        }
        d_star.push(t, ds);
        eta1.push(t, e1);
        eta2.push(t, e2);
    }
    let initial_queue_delay = d_star.first().map(|(_, v)| v).unwrap_or(0.0) - rm.as_secs_f64();
    EmulationPlan {
        d_star,
        eta1,
        eta2,
        d_bound,
        violations,
        dstar_below_rm,
        eta_max,
        eta_min,
        initial_queue_delay,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(v: f64, n: usize) -> TimeSeries {
        let mut s = TimeSeries::new();
        for i in 0..n {
            s.push(Time::from_millis(i as u64), v);
        }
        s
    }

    #[test]
    fn flat_trajectories_feasible() {
        // Two constant trajectories 1 ms apart, δ_max = 0, ε = 1 ms.
        let d1 = flat(0.050, 100);
        let d2 = flat(0.051, 100);
        let plan = plan_emulation(
            &d1,
            &d2,
            1.0,
            4.0,
            0.0,
            0.001,
            Dur::from_millis(40),
            Dur::from_millis(1),
            100,
        );
        assert!(plan.feasible(), "violations={}", plan.violations);
        // d* = 0.8·51 + 0.2·50 − 1 = 49.8 ms... check weights: w1 = 1/5.
        let (_, ds0) = plan.d_star.first().unwrap();
        let expect = 0.2 * 0.050 + 0.8 * 0.051 - 0.001;
        assert!((ds0 - expect).abs() < 1e-12);
        // η₁ = d̄₁ − d* ≥ 0 and ≤ D = 2 ms.
        assert!(plan.eta_min >= 0.0);
        assert!(plan.eta_max <= plan.d_bound + 1e-12);
    }

    #[test]
    fn weighted_average_lies_between() {
        let d1 = flat(0.060, 10);
        let d2 = flat(0.064, 10);
        let plan = plan_emulation(
            &d1,
            &d2,
            2.0,
            2.0,
            0.004,
            0.0005,
            Dur::from_millis(40),
            Dur::from_millis(1),
            10,
        );
        let (_, ds) = plan.d_star.first().unwrap();
        // Average = 62 ms, minus (δ+ε)=4.5 ms → 57.5 ms; below both.
        assert!((ds - 0.0575).abs() < 1e-12);
        assert!(plan.feasible());
    }

    #[test]
    fn wide_gap_is_infeasible() {
        // Trajectories 20 ms apart but δ_max+ε only 2 ms: η₂ would need to
        // exceed D.
        let d1 = flat(0.050, 10);
        let d2 = flat(0.070, 10);
        let plan = plan_emulation(
            &d1,
            &d2,
            1.0,
            1.0,
            0.001,
            0.001,
            Dur::from_millis(40),
            Dur::from_millis(1),
            10,
        );
        assert!(!plan.feasible());
    }

    #[test]
    fn d_star_below_rm_flagged() {
        // Both trajectories at Rm: subtracting δ+ε drives d* under Rm —
        // that's case 2 of the proof (handled by a big link), flagged here.
        let d1 = flat(0.040, 10);
        let d2 = flat(0.040, 10);
        let plan = plan_emulation(
            &d1,
            &d2,
            1.0,
            1.0,
            0.001,
            0.001,
            Dur::from_millis(40),
            Dur::from_millis(1),
            10,
        );
        assert!(!plan.feasible());
        assert!(plan.needs_case2());
        // The η bounds themselves are fine; only the d* ≥ Rm precondition
        // fails — exactly Case 2.
        assert_eq!(plan.violations, 0);
    }

    #[test]
    fn oscillating_trajectories_within_band_feasible() {
        // Both oscillate in a band of width δ_max around similar centers.
        let mut d1 = TimeSeries::new();
        let mut d2 = TimeSeries::new();
        for i in 0..200u64 {
            let osc = 0.001 * ((i % 7) as f64) / 7.0;
            d1.push(Time::from_millis(i), 0.060 + osc);
            d2.push(Time::from_millis(i), 0.0605 + osc * 0.7);
        }
        let plan = plan_emulation(
            &d1,
            &d2,
            1.0,
            8.0,
            0.001,
            0.0006,
            Dur::from_millis(40),
            Dur::from_millis(1),
            200,
        );
        assert!(plan.feasible(), "min={} max={}", plan.eta_min, plan.eta_max);
    }

    #[test]
    fn initial_queue_delay_reported() {
        let d1 = flat(0.050, 10);
        let d2 = flat(0.051, 10);
        let plan = plan_emulation(
            &d1,
            &d2,
            1.0,
            1.0,
            0.001,
            0.001,
            Dur::from_millis(40),
            Dur::from_millis(1),
            10,
        );
        let (_, ds0) = plan.d_star.first().unwrap();
        assert!((plan.initial_queue_delay - (ds0 - 0.040)).abs() < 1e-12);
    }
}

//! Table 1 of the paper: glossary of symbols, kept verbatim so every module
//! can reference the same notation.
//!
//! | Symbol | Meaning |
//! |---|---|
//! | `C` | Bottleneck link rate |
//! | `Rm` | Minimum propagation RTT |
//! | `D` | The network model's non-congestive delay bound |
//! | `cwnd` | Congestion window |
//! | `s` | Bound on unfairness (throughput ratio) |
//! | `d_max(C)`, `d_min(C)` | Max/min RTT after the CCA converges |
//! | `δ(C)` | `d_max(C) − d_min(C)` |
//! | `δ_max` | Upper bound on `δ(C)` for all `C > λ` |
//! | `d̂_max` | Upper bound on `d_max(C)` for all `C > λ` |
//! | `λ` | Link rate above which the bounds apply |
//! | `f` | Efficiency: long-run throughput ≥ `f·C` (Definition 4) |

/// One glossary row.
#[derive(Clone, Copy, Debug)]
pub struct Symbol {
    /// The notation used in the paper.
    pub symbol: &'static str,
    /// Its meaning.
    pub meaning: &'static str,
}

/// Table 1, as data (the `repro glossary` subcommand prints it).
pub const TABLE1: &[Symbol] = &[
    Symbol { symbol: "C", meaning: "Link rate" },
    Symbol { symbol: "Rm", meaning: "Min propagation RTT" },
    Symbol { symbol: "D", meaning: "Model's delay bound" },
    Symbol { symbol: "cwnd", meaning: "Congestion window" },
    Symbol { symbol: "s", meaning: "Bound on unfairness" },
    Symbol {
        symbol: "d_max(C), d_min(C)",
        meaning: "Max/min delay for CCA after convergence",
    },
    Symbol {
        symbol: "delta(C)",
        meaning: "d_max(C) - d_min(C)",
    },
    Symbol {
        symbol: "delta_max",
        meaning: "Upper bound on delta(C)",
    },
    Symbol {
        symbol: "lambda",
        meaning: "d_max, delta_max apply for C > lambda",
    },
    Symbol {
        symbol: "d_max^bar",
        meaning: "Upper bound on d_max(C)",
    },
    Symbol {
        symbol: "f",
        meaning: "Efficiency: throughput >= f*C infinitely often (Def. 4)",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_complete() {
        assert!(TABLE1.len() >= 10);
        assert!(TABLE1.iter().any(|s| s.symbol == "D"));
        assert!(TABLE1.iter().any(|s| s.symbol == "delta_max"));
    }
}

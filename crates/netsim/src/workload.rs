//! Dynamic workloads: scheduled flow arrivals with finite sizes.
//!
//! Every scenario used to be a small fixed set of flows that start near
//! t = 0 and run to the end. A [`Workload`] generalizes that to the
//! population scale the paper's starvation claim is really about: a
//! schedule of flow descriptors — arrival time from a deterministic
//! arrival process, flow size from a (possibly heavy-tailed) size
//! distribution, a template CCA/path — that the simulator consumes by
//! self-rescheduling the next arrival as an event, spawning the flow
//! mid-run, and retiring it when its byte budget is delivered. Per-flow
//! completion times feed the FCT and starvation-duration distributions in
//! [`crate::metrics::SimResult`].
//!
//! Both the arrival process and the size distribution draw from the
//! hermetic [`Xoshiro256`] streams, so a workload of a thousand flows is
//! exactly as reproducible as a two-flow scenario: same config, same bits.

use crate::config::FlowConfig;
use crate::jitter::Jitter;
use cca::BoxCca;
use simcore::rng::Xoshiro256;
use simcore::units::{bytes_as_f64, f64_as_bytes, Dur, Time};

/// How flow arrivals are spaced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// One arrival every `interval`, exactly.
    Fixed {
        /// The inter-arrival gap.
        interval: Dur,
    },
    /// Poisson arrivals: exponential inter-arrival times with the given
    /// mean, drawn from a seeded stream (inverse-CDF on uniform draws).
    Poisson {
        /// Mean inter-arrival time (`1 / λ`).
        mean: Dur,
        /// Seed of the arrival stream.
        seed: u64,
    },
}

/// How flow sizes are drawn.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SizeDist {
    /// Every flow transfers exactly this many bytes.
    Fixed {
        /// The transfer size.
        bytes: u64,
    },
    /// Bounded Pareto: `X = min / U^(1/α)` capped at `cap` — the classic
    /// heavy-tailed "mice and elephants" mix (small `α` ⇒ heavier tail).
    Pareto {
        /// Minimum flow size.
        min_bytes: u64,
        /// Tail index `α` (must be > 0; 1.1–1.5 is the usual WAN range).
        alpha: f64,
        /// Upper truncation of the tail.
        cap_bytes: u64,
        /// Seed of the size stream.
        seed: u64,
    },
}

/// Golden-ratio increment used to decorrelate per-flow seed streams.
const SEED_PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derive the `k`-th flow's seed from a base seed: deterministic, distinct
/// for every `k`, and uncorrelated enough that per-flow jitter/loss streams
/// don't march in lockstep.
pub fn decorrelate(base: u64, k: u64) -> u64 {
    base ^ k.wrapping_add(1).wrapping_mul(SEED_PHI)
}

/// A schedule of dynamic flow arrivals sharing one template path.
///
/// `count` flows arrive starting at `start`, spaced by `arrivals`, each
/// transferring `sizes`-many bytes through a clone of the template CCA on
/// an `rm` path. Jitter and loss, when configured, get per-flow
/// decorrelated seeds via [`decorrelate`]. Spawned flows take ids
/// continuing after the statically-configured flows, in arrival order.
#[derive(Clone)]
pub struct Workload {
    /// How many flows the schedule spawns (arrivals past the end of the
    /// run are dropped).
    pub count: u64,
    /// When the first flow arrives.
    pub start: Time,
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// The flow-size distribution.
    pub sizes: SizeDist,
    /// Template CCA, deep-cloned per spawned flow.
    pub cca: BoxCca,
    /// Propagation RTT of every spawned flow's path.
    pub rm: Dur,
    /// Packet size of every spawned flow.
    pub mss: u64,
    /// Optional random jitter `(max, seed base)`; flow `k` draws from the
    /// stream seeded with `decorrelate(seed, k)`.
    pub jitter: Option<(Dur, u64)>,
    /// Optional Bernoulli loss `(rate, seed base)`, decorrelated per flow.
    pub loss: Option<(f64, u64)>,
}

impl Workload {
    /// A workload of `count` flows with the given arrival process and size
    /// distribution, on clean `rm` paths driven by clones of `cca`.
    pub fn new(
        count: u64,
        arrivals: ArrivalProcess,
        sizes: SizeDist,
        cca: BoxCca,
        rm: Dur,
    ) -> Workload {
        Workload {
            count,
            start: Time::ZERO,
            arrivals,
            sizes,
            cca,
            rm,
            mss: 1500,
            jitter: None,
            loss: None,
        }
    }

    /// Builder: delay the first arrival.
    pub fn with_start(mut self, t: Time) -> Workload {
        self.start = t;
        self
    }

    /// Builder: replace the packet size.
    pub fn with_mss(mut self, mss: u64) -> Workload {
        self.mss = mss;
        self
    }

    /// Builder: random jitter in `[0, max]`, per-flow decorrelated seeds.
    pub fn with_jitter(mut self, max: Dur, seed: u64) -> Workload {
        self.jitter = Some((max, seed));
        self
    }

    /// Builder: Bernoulli loss, per-flow decorrelated seeds.
    pub fn with_loss(mut self, rate: f64, seed: u64) -> Workload {
        self.loss = Some((rate, seed));
        self
    }

    /// The [`FlowConfig`] for the `k`-th spawned flow, arriving at
    /// `arrival` with a drawn `size`.
    pub fn flow_config(&self, k: u64, arrival: Time, size: u64) -> FlowConfig {
        let mut f = FlowConfig::bulk(self.cca.clone(), self.rm)
            .with_mss(self.mss)
            .with_start(arrival)
            .with_size(size.max(1));
        if let Some((max, seed)) = self.jitter {
            if max > Dur::ZERO {
                f = f.with_jitter(Jitter::Random {
                    max,
                    rng: Xoshiro256::new(decorrelate(seed, k)),
                });
            }
        }
        if let Some((rate, seed)) = self.loss {
            if rate > 0.0 {
                f = f.with_loss(rate, decorrelate(seed, k));
            }
        }
        f
    }
}

/// Runtime state of a workload within one simulation: the RNG streams the
/// arrival process and size distribution consume as flows spawn.
pub(crate) struct WorkloadRun {
    pub spec: Workload,
    /// Flows spawned so far (the next flow is spawn number `spawned`).
    pub spawned: u64,
    arrival_rng: Option<Xoshiro256>,
    size_rng: Option<Xoshiro256>,
}

impl WorkloadRun {
    pub fn new(spec: Workload) -> WorkloadRun {
        let arrival_rng = match spec.arrivals {
            ArrivalProcess::Fixed { .. } => None,
            ArrivalProcess::Poisson { seed, .. } => Some(Xoshiro256::new(seed)),
        };
        let size_rng = match spec.sizes {
            SizeDist::Fixed { .. } => None,
            SizeDist::Pareto { seed, .. } => Some(Xoshiro256::new(seed)),
        };
        WorkloadRun {
            spec,
            spawned: 0,
            arrival_rng,
            size_rng,
        }
    }

    /// The gap between this arrival and the next one.
    pub fn next_interarrival(&mut self) -> Dur {
        match self.spec.arrivals {
            ArrivalProcess::Fixed { interval } => interval,
            ArrivalProcess::Poisson { mean, .. } => {
                let rng = self
                    .arrival_rng
                    .as_mut()
                    .expect("Poisson arrivals always carry an RNG stream");
                // Inverse CDF of Exp(1/mean): −mean · ln(1 − U), with
                // 1 − U ∈ (0, 1] so the log is finite.
                let u = rng.next_f64();
                Dur::from_secs_f64(-mean.as_secs_f64() * (1.0 - u).ln())
            }
        }
    }

    /// Draw the next flow's size in bytes (≥ 1).
    pub fn draw_size(&mut self) -> u64 {
        match self.spec.sizes {
            SizeDist::Fixed { bytes } => bytes.max(1),
            SizeDist::Pareto { min_bytes, alpha, cap_bytes, .. } => {
                let rng = self
                    .size_rng
                    .as_mut()
                    .expect("Pareto sizes always carry an RNG stream");
                let u = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                let x = bytes_as_f64(min_bytes.max(1)) / u.powf(1.0 / alpha.max(1e-9));
                f64_as_bytes(x.min(bytes_as_f64(cap_bytes.max(min_bytes.max(1)))))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::ConstCwnd;

    fn wl(arrivals: ArrivalProcess, sizes: SizeDist) -> Workload {
        Workload::new(
            100,
            arrivals,
            sizes,
            Box::new(ConstCwnd::ten_packets()),
            Dur::from_millis(20),
        )
    }

    #[test]
    fn fixed_arrivals_are_exact() {
        let mut run = WorkloadRun::new(wl(
            ArrivalProcess::Fixed { interval: Dur::from_millis(7) },
            SizeDist::Fixed { bytes: 30_000 },
        ));
        for _ in 0..5 {
            assert_eq!(run.next_interarrival(), Dur::from_millis(7));
            assert_eq!(run.draw_size(), 30_000);
        }
    }

    #[test]
    fn poisson_interarrivals_are_deterministic_and_averaged_near_the_mean() {
        let spec = wl(
            ArrivalProcess::Poisson { mean: Dur::from_millis(10), seed: 42 },
            SizeDist::Fixed { bytes: 1 },
        );
        let draw = |spec: &Workload| {
            let mut run = WorkloadRun::new(spec.clone());
            (0..4000).map(|_| run.next_interarrival()).collect::<Vec<_>>()
        };
        let a = draw(&spec);
        let b = draw(&spec);
        assert_eq!(a, b, "same seed, same arrival schedule");
        let mean_ns =
            a.iter().map(|d| d.as_nanos() as f64).sum::<f64>() / a.len() as f64;
        let target = Dur::from_millis(10).as_nanos() as f64;
        assert!(
            (mean_ns - target).abs() < target * 0.1,
            "empirical mean {mean_ns} ns vs target {target} ns"
        );
    }

    #[test]
    fn pareto_sizes_are_bounded_and_heavy_tailed() {
        let spec = wl(
            ArrivalProcess::Fixed { interval: Dur::from_millis(1) },
            SizeDist::Pareto { min_bytes: 10_000, alpha: 1.3, cap_bytes: 400_000, seed: 7 },
        );
        let mut run = WorkloadRun::new(spec);
        let sizes: Vec<u64> = (0..4000).map(|_| run.draw_size()).collect();
        assert!(sizes.iter().all(|&s| (10_000..=400_000).contains(&s)));
        // Heavy tail: some flows near the floor, some an order of
        // magnitude above it, and the cap actually binds occasionally.
        assert!(sizes.iter().filter(|&&s| s < 15_000).count() > sizes.len() / 4);
        assert!(sizes.iter().any(|&s| s > 100_000));
        assert!(sizes.contains(&400_000));
    }

    #[test]
    fn decorrelated_seeds_differ_per_flow() {
        let s: Vec<u64> = (0..50).map(|k| decorrelate(99, k)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn flow_config_applies_template_and_per_flow_seeds() {
        let spec = wl(
            ArrivalProcess::Fixed { interval: Dur::from_millis(1) },
            SizeDist::Fixed { bytes: 50_000 },
        )
        .with_mss(1200)
        .with_jitter(Dur::from_millis(5), 3)
        .with_loss(0.01, 4);
        let f = spec.flow_config(2, Time::from_millis(123), 50_000);
        assert_eq!(f.mss, 1200);
        assert_eq!(f.start, Time::from_millis(123));
        assert_eq!(f.size, Some(50_000));
        assert_eq!(f.loss_seed, decorrelate(4, 2));
        assert!(matches!(f.jitter, Jitter::Random { max, .. } if max == Dur::from_millis(5)));
        // A different flow index gets a different loss stream.
        let g = spec.flow_config(3, Time::from_millis(124), 50_000);
        assert_ne!(f.loss_seed, g.loss_seed);
    }
}

//! # netsim — deterministic packet-level network emulator
//!
//! The Mahimahi/ns-3 substitute for the reproduction of *Starvation in
//! End-to-End Congestion Control* (SIGCOMM 2022). It implements the paper's
//! §3 network model exactly, plus the extra path elements §5's experiments
//! need:
//!
//! ```text
//!  sender ─┬─► [loss] ─► shared FIFO bottleneck (C, buffer) ─► prop. Rm ─►
//!          │                                                   per-flow
//!  sender ─┘                                                   jitter
//!                                                              [0, D] ─►
//!  ◄─ ACK path (delayed ACKs / aggregation / quantization) ◄─ receiver
//! ```
//!
//! * Flows share **one FIFO queue** drained at a constant rate `C`; packets
//!   then experience the flow's propagation delay `Rm` and a flow-specific
//!   **non-congestive delay** in `[0, D]` that never reorders packets
//!   (§3's model component). Jitter can be absent, random, scripted, or
//!   adversarial (targeting a recorded RTT trajectory — the construction
//!   inside Theorem 1's proof).
//! * The receiver can acknowledge per packet, with delayed ACKs (Figure 7),
//!   or with time-quantized aggregation (the §5.3 PCC Vivace scenario).
//! * A Bernoulli loss element reproduces the §5.4 PCC Allegro scenario.
//! * Senders implement windowing, pacing, duplicate-ACK fast retransmit,
//!   NewReno-style recovery, and RTO — enough transport realism for the
//!   loss-based baselines without modelling byte streams.
//!
//! Everything is deterministic: integer-nanosecond time, a seeded PRNG, and
//! FIFO tie-breaking (see `simcore`).
//!
//! # Example
//!
//! Two Copa flows share a 24 Mbit/s link; one path carries 1 ms of
//! persistent jitter (the §5.1 scenario, shrunk):
//!
//! ```
//! use netsim::{FlowConfig, Jitter, LinkConfig, Network, SimConfig};
//! use simcore::units::{Dur, Rate};
//!
//! let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
//! let poisoned = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(59))
//!     .with_jitter(Jitter::ExtraExcept {
//!         extra: Dur::from_millis(1),
//!         period: 5_000,
//!         offset: 0,
//!     });
//! let clean = FlowConfig::bulk(Box::new(cca::Copa::default_params()), Dur::from_millis(60));
//!
//! let result = Network::new(SimConfig::new(link, vec![poisoned, clean], Dur::from_secs(5))).run();
//! let t: Vec<f64> = result.throughputs().iter().map(|r| r.mbps()).collect();
//! assert!(t[0] + t[1] > 15.0, "link should be mostly used: {t:?}");
//! ```

pub mod config;
pub mod jitter;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod pktstore;
pub mod receiver;
pub mod sender;
pub mod sim;
pub mod workload;

pub use config::{AckPolicy, FlowConfig, LinkConfig, PathSpec, SimConfig, Transport};
pub use jitter::Jitter;
pub use metrics::{FlowMetrics, FlowRecord, Percentiles, PopulationSummary, SimResult};
pub use packet::FlowId;
pub use pktstore::{PktStore, RefStore, SentPkt, SeqStore};
pub use sender::Accounting;
pub use sim::Network;
pub use workload::{ArrivalProcess, SizeDist, Workload};

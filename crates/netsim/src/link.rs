//! The shared FIFO bottleneck (§3): one queue, constant drain rate `C`,
//! tail-drop at a configurable buffer size.
//!
//! The paper's model assumes a queue "large enough to never overflow" for
//! delay-bounding CCAs; the loss-based experiments (Figure 7, §5.4) need a
//! finite buffer (60 packets / 1 BDP), so the buffer is a parameter.

use crate::packet::{FlowId, Packet};
use simcore::units::{Dur, Rate, Time};
use std::collections::VecDeque;

/// Outcome of offering a packet to the link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Enqueue {
    /// Packet accepted; if `Some(t)`, the caller must schedule the *first*
    /// departure at `t` (the link was idle).
    Accepted(Option<Time>),
    /// Tail-dropped: the buffer was full.
    Dropped,
}

/// Shared FIFO bottleneck link.
#[derive(Clone, Debug)]
pub struct Bottleneck {
    rate: Rate,
    buffer_bytes: u64,
    /// Mark arriving packets with ECN once the backlog exceeds this
    /// (§6.4's threshold-AQM heuristic). `None` disables marking.
    ecn_threshold: Option<u64>,
    queue: VecDeque<Packet>,
    queued_bytes: u64,
    /// True while a departure event is outstanding.
    busy: bool,
    /// Total bytes served (for utilization accounting).
    served_bytes: u64,
    /// Tail drops per flow index (grown on demand).
    drops: Vec<u64>,
    /// Cumulative busy time.
    busy_time: Dur,
    last_busy_start: Option<Time>,
}

impl Bottleneck {
    /// A link draining at `rate` with `buffer_bytes` of queue.
    pub fn new(rate: Rate, buffer_bytes: u64) -> Self {
        assert!(rate.bytes_per_sec() > 0.0, "link rate must be positive");
        Bottleneck {
            rate,
            buffer_bytes,
            ecn_threshold: None,
            queue: VecDeque::new(),
            queued_bytes: 0,
            busy: false,
            served_bytes: 0,
            drops: Vec::new(),
            busy_time: Dur::ZERO,
            last_busy_start: None,
        }
    }

    /// The configured drain rate `C`.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Enable ECN marking above `threshold` bytes of backlog.
    pub fn set_ecn_threshold(&mut self, threshold: Option<u64>) {
        self.ecn_threshold = threshold;
    }

    /// Bytes currently enqueued (excluding the packet in service).
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Packets currently enqueued.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The queued packets, head (next to depart) first. The trace
    /// subsystem uses this to settle conservation at the end of a run.
    pub fn queued_packets(&self) -> impl Iterator<Item = &Packet> + '_ {
        self.queue.iter()
    }

    /// The queueing delay a newly arriving byte would experience.
    pub fn queue_delay(&self) -> Dur {
        self.rate.tx_time(self.queued_bytes)
    }

    /// Total bytes served so far.
    pub fn served_bytes(&self) -> u64 {
        self.served_bytes
    }

    /// Tail drops recorded for `flow`.
    pub fn drops(&self, flow: FlowId) -> u64 {
        self.drops.get(flow.index()).copied().unwrap_or(0)
    }

    /// Fraction of `[0, now]` the link spent transmitting.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == Time::ZERO {
            return 0.0;
        }
        let mut busy = self.busy_time;
        if let Some(start) = self.last_busy_start {
            busy += now.since(start);
        }
        busy.as_secs_f64() / now.as_secs_f64()
    }

    /// Offer a packet. On `Accepted(Some(t))` the caller schedules the first
    /// departure at `t`; `Accepted(None)` means a departure chain is already
    /// running and will pick this packet up.
    pub fn enqueue(&mut self, now: Time, mut pkt: Packet) -> Enqueue {
        if let Some(th) = self.ecn_threshold {
            if self.queued_bytes >= th {
                pkt.ecn = true;
            }
        }
        if self.queued_bytes + pkt.bytes > self.buffer_bytes {
            let f = pkt.flow.index();
            if self.drops.len() <= f {
                self.drops.resize(f + 1, 0);
            }
            self.drops[f] += 1;
            return Enqueue::Dropped;
        }
        self.queued_bytes += pkt.bytes;
        self.queue.push_back(pkt);
        if self.busy {
            Enqueue::Accepted(None)
        } else {
            self.busy = true;
            self.last_busy_start = Some(now);
            let head = self.queue.front().expect("just pushed");
            Enqueue::Accepted(Some(now + self.rate.tx_time(head.bytes)))
        }
    }

    /// Complete the in-service packet's transmission at `now`. Returns the
    /// departed packet and, if more packets wait, the next departure time.
    pub fn depart(&mut self, now: Time) -> (Packet, Option<Time>) {
        debug_assert!(self.busy, "depart without a scheduled departure");
        let pkt = self.queue.pop_front().expect("departure from empty queue");
        self.queued_bytes -= pkt.bytes;
        self.served_bytes += pkt.bytes;
        let next = match self.queue.front() {
            Some(head) => Some(now + self.rate.tx_time(head.bytes)),
            None => {
                self.busy = false;
                if let Some(start) = self.last_busy_start.take() {
                    self.busy_time += now.since(start);
                }
                None
            }
        };
        (pkt, next)
    }

    /// Pre-fill the queue (warm start): packets are placed as if already
    /// waiting; the caller schedules the first departure at the returned
    /// time. Panics if the contents exceed the buffer.
    pub fn warm_fill(&mut self, now: Time, pkts: Vec<Packet>) -> Option<Time> {
        for pkt in pkts {
            assert!(
                self.queued_bytes + pkt.bytes <= self.buffer_bytes,
                "warm_fill overflows the buffer"
            );
            self.queued_bytes += pkt.bytes;
            self.queue.push_back(pkt);
        }
        if self.queue.is_empty() || self.busy {
            return None;
        }
        self.busy = true;
        self.last_busy_start = Some(now);
        let head = self.queue.front().expect("queue checked non-empty above");
        Some(now + self.rate.tx_time(head.bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(flow: usize, seq: u64) -> Packet {
        Packet {
            flow: FlowId::from_index(flow),
            seq,
            bytes: 1500,
            sent_at: Time::ZERO,
            delivered_at_send: 0,
            app_limited: false,
            retransmit: false,
            ecn: false,
        }
    }

    #[test]
    fn first_enqueue_schedules_departure() {
        // 12 Mbit/s → 1 ms per 1500 B.
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        match l.enqueue(Time::ZERO, pkt(0, 0)) {
            Enqueue::Accepted(Some(t)) => assert_eq!(t, Time::from_millis(1)),
            other => panic!("{other:?}"),
        }
        // Second packet: chain already running.
        assert_eq!(l.enqueue(Time::ZERO, pkt(0, 1)), Enqueue::Accepted(None));
    }

    #[test]
    fn fifo_service_order_across_flows() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        l.enqueue(Time::ZERO, pkt(0, 0));
        l.enqueue(Time::ZERO, pkt(1, 0));
        l.enqueue(Time::ZERO, pkt(0, 1));
        let (p1, n1) = l.depart(Time::from_millis(1));
        assert_eq!((p1.flow, p1.seq), (FlowId::from_index(0), 0));
        assert_eq!(n1, Some(Time::from_millis(2)));
        let (p2, _) = l.depart(Time::from_millis(2));
        assert_eq!((p2.flow, p2.seq), (FlowId::from_index(1), 0));
        let (p3, n3) = l.depart(Time::from_millis(3));
        assert_eq!((p3.flow, p3.seq), (FlowId::from_index(0), 1));
        assert_eq!(n3, None);
    }

    #[test]
    fn tail_drop_when_full() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 2 * 1500);
        assert_ne!(l.enqueue(Time::ZERO, pkt(0, 0)), Enqueue::Dropped);
        assert_ne!(l.enqueue(Time::ZERO, pkt(0, 1)), Enqueue::Dropped);
        assert_eq!(l.enqueue(Time::ZERO, pkt(1, 2)), Enqueue::Dropped);
        assert_eq!(l.drops(FlowId::from_index(1)), 1);
        assert_eq!(l.drops(FlowId::from_index(0)), 0);
    }

    #[test]
    fn queue_delay_tracks_backlog() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        assert_eq!(l.queue_delay(), Dur::ZERO);
        for i in 0..10 {
            l.enqueue(Time::ZERO, pkt(0, i));
        }
        assert_eq!(l.queue_delay(), Dur::from_millis(10));
    }

    #[test]
    fn utilization_accounting() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        l.enqueue(Time::ZERO, pkt(0, 0));
        l.depart(Time::from_millis(1));
        // Busy 1 ms of the first 2 ms.
        assert!((l.utilization(Time::from_millis(2)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn served_bytes_counts() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        l.enqueue(Time::ZERO, pkt(0, 0));
        l.enqueue(Time::ZERO, pkt(0, 1));
        l.depart(Time::from_millis(1));
        l.depart(Time::from_millis(2));
        assert_eq!(l.served_bytes(), 3000);
    }

    #[test]
    fn ecn_marks_above_threshold_only() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        l.set_ecn_threshold(Some(3 * 1500));
        for i in 0..6 {
            l.enqueue(Time::ZERO, pkt(0, i));
        }
        let marks: Vec<bool> = (0..6)
            .map(|i| l.depart(Time::from_millis(i + 1)).0.ecn)
            .collect();
        // Backlog reaches the 3-packet threshold when packet 3 arrives.
        assert_eq!(marks, vec![false, false, false, true, true, true]);
    }

    #[test]
    fn warm_fill_preloads_queue() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 100 * 1500);
        let first = l.warm_fill(Time::ZERO, vec![pkt(0, 0), pkt(1, 0), pkt(0, 1)]);
        assert_eq!(first, Some(Time::from_millis(1)));
        assert_eq!(l.queue_len(), 3);
        assert_eq!(l.queue_delay(), Dur::from_millis(3));
    }

    #[test]
    #[should_panic]
    fn warm_fill_overflow_panics() {
        let mut l = Bottleneck::new(Rate::from_mbps(12.0), 1500);
        l.warm_fill(Time::ZERO, vec![pkt(0, 0), pkt(0, 1)]);
    }
}

//! Per-flow and per-run measurement records.
//!
//! The paper's throughput definition (§4.2): "the number of bytes
//! acknowledged between time 0 and t divided by t" — implemented by
//! [`FlowMetrics::throughput_at`] (with time 0 = the flow's start).

use simcore::series::TimeSeries;
use simcore::stats;
use simcore::units::{bytes_as_f64, f64_as_bytes, Dur, Rate, Time};

/// Everything recorded about one flow during a run.
#[derive(Clone, Debug)]
pub struct FlowMetrics {
    /// Flow start time.
    pub start: Time,
    /// RTT samples `(ack time, seconds)` — exact, one per valid sample.
    pub rtt: TimeSeries,
    /// Congestion window samples (decimated), bytes.
    pub cwnd: TimeSeries,
    /// Pacing-rate samples (decimated), bytes/sec.
    pub pacing: TimeSeries,
    /// Cumulative delivered bytes over time.
    pub delivered: TimeSeries,
    /// Total bytes handed to the path (including retransmissions).
    pub sent_bytes: u64,
    /// Bytes the sender declared lost.
    pub lost_bytes: u64,
    /// Retransmitted bytes.
    pub retransmitted_bytes: u64,
    /// Fast-retransmit episodes.
    pub fast_retransmits: u64,
    /// RTO episodes.
    pub timeouts: u64,
}

impl FlowMetrics {
    /// Empty record for a flow starting at `start`.
    pub fn new(start: Time) -> Self {
        FlowMetrics {
            start,
            rtt: TimeSeries::new(),
            cwnd: TimeSeries::new(),
            pacing: TimeSeries::new(),
            delivered: TimeSeries::new(),
            sent_bytes: 0,
            lost_bytes: 0,
            retransmitted_bytes: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Total bytes delivered by the end of the record.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.last().map(|(_, v)| f64_as_bytes(v)).unwrap_or(0)
    }

    /// The paper's throughput at time `t`: delivered bytes in
    /// `[start, t]` divided by `t − start`.
    pub fn throughput_at(&self, t: Time) -> Rate {
        if t <= self.start {
            return Rate::ZERO;
        }
        let bytes = self.delivered.value_at(t).unwrap_or(0.0);
        Rate::from_bytes_per_sec(bytes / t.since(self.start).as_secs_f64())
    }

    /// Mean throughput over a window `[a, b]` (delivered delta / elapsed).
    ///
    /// An empty or inverted window (`b <= a`) yields [`Rate::ZERO`]: it
    /// arises legitimately when a flow starts within `window` of the run's
    /// end (or exactly at it) and `steady_throughputs` clamps the window
    /// start to the flow start. Such a flow delivered nothing steady-state
    /// — zero is the honest answer, not a panic.
    pub fn throughput_over(&self, a: Time, b: Time) -> Rate {
        if b <= a {
            return Rate::ZERO;
        }
        let d_a = self.delivered.value_at(a).unwrap_or(0.0);
        let d_b = self.delivered.value_at(b).unwrap_or(0.0);
        Rate::from_bytes_per_sec((d_b - d_a).max(0.0) / b.since(a).as_secs_f64())
    }

    /// Mean RTT over `[a, b]`, seconds.
    ///
    /// `None` when the window holds no RTT samples — a flow that never
    /// started, stalled (RTO storm), or whose window predates its first
    /// valid (non-Karn-excluded) sample. Callers must decide explicitly:
    /// `expect` with the scenario's reason when samples are guaranteed,
    /// or a domain-appropriate default when a silent flow is a legal
    /// outcome (starvation scenarios produce exactly such flows).
    pub fn mean_rtt_in(&self, a: Time, b: Time) -> Option<f64> {
        self.rtt.mean_in(a, b)
    }

    /// Min/max RTT over `[a, b]` in seconds — `(d_min, d_max)` of
    /// Definition 1 when measured over the converged region.
    ///
    /// `None` on an empty sample window, exactly as [`Self::mean_rtt_in`].
    pub fn rtt_range_in(&self, a: Time, b: Time) -> Option<(f64, f64)> {
        Some((self.rtt.min_in(a, b)?, self.rtt.max_in(a, b)?))
    }

    /// Fraction of sent bytes declared lost.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent_bytes == 0 {
            0.0
        } else {
            bytes_as_f64(self.lost_bytes) / bytes_as_f64(self.sent_bytes)
        }
    }
}

/// Result of a complete simulation run.
pub struct SimResult {
    /// Per-flow metrics, indexed by flow id.
    pub flows: Vec<FlowMetrics>,
    /// Link utilization over the run (busy fraction).
    pub utilization: f64,
    /// Tail drops per flow at the bottleneck.
    pub drops: Vec<u64>,
    /// Jitter-element clamp violations per flow (nonzero means an
    /// adversarial emulation was infeasible at some instants).
    pub jitter_clamps: Vec<u64>,
    /// When the run ended.
    pub end: Time,
}

impl SimResult {
    /// Per-flow throughput over the whole run (paper Definition: bytes
    /// acked / elapsed since flow start).
    pub fn throughputs(&self) -> Vec<Rate> {
        self.flows.iter().map(|f| f.throughput_at(self.end)).collect()
    }

    /// Per-flow throughput over the last `window` of the run — the
    /// "steady-state" number quoted in §5's experiments.
    pub fn steady_throughputs(&self, window: Dur) -> Vec<Rate> {
        let a = if self.end.as_nanos() > window.as_nanos() {
            self.end - window
        } else {
            Time::ZERO
        };
        self.flows
            .iter()
            .map(|f| f.throughput_over(a.max(f.start), self.end))
            .collect()
    }

    /// Max/min throughput ratio (the paper's unfairness measure `s`).
    pub fn throughput_ratio(&self) -> f64 {
        let t: Vec<f64> = self.throughputs().iter().map(|r| r.mbps()).collect();
        stats::max_min_ratio(&t).unwrap_or(1.0)
    }

    /// Jain fairness index over flow throughputs.
    pub fn jain(&self) -> f64 {
        let t: Vec<f64> = self.throughputs().iter().map(|r| r.mbps()).collect();
        stats::jain_index(&t).unwrap_or(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_with_delivery() -> FlowMetrics {
        let mut m = FlowMetrics::new(Time::ZERO);
        // 1 MB after 1 s, 3 MB after 2 s.
        m.delivered.push(Time::from_secs(1), 1e6);
        m.delivered.push(Time::from_secs(2), 3e6);
        m
    }

    #[test]
    fn throughput_at_divides_by_elapsed() {
        let m = metrics_with_delivery();
        // 3 MB over 2 s = 12 Mbit/s.
        assert!((m.throughput_at(Time::from_secs(2)).mbps() - 12.0).abs() < 1e-9);
        assert_eq!(m.throughput_at(Time::ZERO), Rate::ZERO);
    }

    #[test]
    fn throughput_over_window() {
        let m = metrics_with_delivery();
        // Second second: 2 MB = 16 Mbit/s.
        let r = m.throughput_over(Time::from_secs(1), Time::from_secs(2));
        assert!((r.mbps() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_respects_flow_start() {
        let mut m = FlowMetrics::new(Time::from_secs(1));
        m.delivered.push(Time::from_secs(2), 1e6);
        // 1 MB over 1 s since start = 8 Mbit/s.
        assert!((m.throughput_at(Time::from_secs(2)).mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_over_empty_or_inverted_window_is_zero() {
        let m = metrics_with_delivery();
        let t = Time::from_secs(1);
        assert_eq!(m.throughput_over(t, t), Rate::ZERO);
        assert_eq!(m.throughput_over(Time::from_secs(2), t), Rate::ZERO);
    }

    #[test]
    fn steady_throughputs_with_late_starting_flow() {
        // Regression: a flow starting within `window` of the run's end
        // (here: exactly at it) clamps the window to an empty interval,
        // which used to panic. It must report zero steady throughput.
        let mut early = FlowMetrics::new(Time::ZERO);
        early.delivered.push(Time::from_secs(5), 5e6);
        let late = FlowMetrics::new(Time::from_secs(5));
        let inside = FlowMetrics::new(Time::from_secs(4));
        let r = SimResult {
            flows: vec![early, late, inside],
            utilization: 0.9,
            drops: vec![0, 0, 0],
            jitter_clamps: vec![0, 0, 0],
            end: Time::from_secs(5),
        };
        let steady = r.steady_throughputs(Dur::from_secs(2));
        assert!(steady[0].mbps() > 0.0);
        assert_eq!(steady[1], Rate::ZERO);
        assert_eq!(steady[2], Rate::ZERO); // started inside window, no delivery
    }

    #[test]
    fn loss_fraction() {
        let mut m = FlowMetrics::new(Time::ZERO);
        m.sent_bytes = 100_000;
        m.lost_bytes = 2_000;
        assert!((m.loss_fraction() - 0.02).abs() < 1e-12);
        assert_eq!(FlowMetrics::new(Time::ZERO).loss_fraction(), 0.0);
    }

    #[test]
    fn rtt_range() {
        let mut m = FlowMetrics::new(Time::ZERO);
        m.rtt.push(Time::from_millis(10), 0.050);
        m.rtt.push(Time::from_millis(20), 0.055);
        m.rtt.push(Time::from_millis(30), 0.052);
        let (lo, hi) = m.rtt_range_in(Time::ZERO, Time::from_secs(1)).unwrap();
        assert_eq!((lo, hi), (0.050, 0.055));
    }

    #[test]
    fn sim_result_ratio() {
        let mut a = FlowMetrics::new(Time::ZERO);
        a.delivered.push(Time::from_secs(1), 10e6);
        let mut b = FlowMetrics::new(Time::ZERO);
        b.delivered.push(Time::from_secs(1), 1e6);
        let r = SimResult {
            flows: vec![a, b],
            utilization: 0.9,
            drops: vec![0, 0],
            jitter_clamps: vec![0, 0],
            end: Time::from_secs(1),
        };
        assert!((r.throughput_ratio() - 10.0).abs() < 1e-9);
        assert!(r.jain() < 1.0);
    }
}

//! Per-flow and per-run measurement records.
//!
//! The paper's throughput definition (§4.2): "the number of bytes
//! acknowledged between time 0 and t divided by t" — implemented by
//! [`FlowMetrics::throughput_at`] (with time 0 = the flow's start). Both
//! throughput accessors are departure-aware: a finite flow that completed
//! mid-run is measured over its active lifetime, not the idle tail.
//!
//! A run's results are keyed per flow: one [`FlowRecord`] per [`FlowId`]
//! holding the flow's metrics together with its bottleneck drops and
//! jitter clamps (formerly three index-parallel `Vec`s on `SimResult`).
//! Records iterate in dense id order, so results are deterministic and
//! `result.flows[i]` is the record of flow `i`.

use crate::packet::FlowId;
use simcore::series::TimeSeries;
use simcore::stats;
use simcore::units::{bytes_as_f64, count_as_u64, f64_as_bytes, Dur, Rate, Time};

/// Everything recorded about one flow during a run.
#[derive(Clone, Debug)]
pub struct FlowMetrics {
    /// Flow start time.
    pub start: Time,
    /// Completion time of a finite transfer (`None` = still active at the
    /// end of the run, or a bulk flow).
    pub completed: Option<Time>,
    /// RTT samples `(ack time, seconds)` — exact, one per valid sample.
    pub rtt: TimeSeries,
    /// Congestion window samples (decimated), bytes.
    pub cwnd: TimeSeries,
    /// Pacing-rate samples (decimated), bytes/sec.
    pub pacing: TimeSeries,
    /// Cumulative delivered bytes over time.
    pub delivered: TimeSeries,
    /// Total bytes handed to the path (including retransmissions).
    pub sent_bytes: u64,
    /// Bytes the sender declared lost.
    pub lost_bytes: u64,
    /// Retransmitted bytes.
    pub retransmitted_bytes: u64,
    /// Fast-retransmit episodes.
    pub fast_retransmits: u64,
    /// RTO episodes.
    pub timeouts: u64,
}

impl FlowMetrics {
    /// Empty record for a flow starting at `start`.
    pub fn new(start: Time) -> Self {
        FlowMetrics {
            start,
            completed: None,
            rtt: TimeSeries::new(),
            cwnd: TimeSeries::new(),
            pacing: TimeSeries::new(),
            delivered: TimeSeries::new(),
            sent_bytes: 0,
            lost_bytes: 0,
            retransmitted_bytes: 0,
            fast_retransmits: 0,
            timeouts: 0,
        }
    }

    /// Total bytes delivered by the end of the record.
    pub fn total_delivered(&self) -> u64 {
        self.delivered.last().map(|(_, v)| f64_as_bytes(v)).unwrap_or(0)
    }

    /// Flow completion time of a finite transfer (`None` while active).
    pub fn fct(&self) -> Option<Dur> {
        self.completed.map(|c| c.since(self.start))
    }

    /// The instant this flow stopped being active: its completion time if
    /// it finished before `end`, else `end` itself.
    pub fn active_until(&self, end: Time) -> Time {
        match self.completed {
            Some(c) => c.min(end),
            None => end,
        }
    }

    /// The paper's throughput at time `t`: delivered bytes in
    /// `[start, t]` divided by `t − start`. Departure-aware: for a flow
    /// that completed before `t` the window clamps to the completion
    /// time, so a finished transfer reports its lifetime rate instead of
    /// a rate diluted by post-departure idle time.
    pub fn throughput_at(&self, t: Time) -> Rate {
        let t = self.active_until(t);
        if t <= self.start {
            return Rate::ZERO;
        }
        let bytes = self.delivered.value_at(t).unwrap_or(0.0);
        Rate::from_bytes_per_sec(bytes / t.since(self.start).as_secs_f64())
    }

    /// Mean throughput over a window `[a, b]` (delivered delta / elapsed).
    /// Departure-aware: both edges clamp to the completion time, so a
    /// window straddling the departure measures the active part only.
    ///
    /// An empty or inverted window (`b <= a` after clamping) yields
    /// [`Rate::ZERO`]: it arises legitimately when a flow starts within
    /// `window` of the run's end (or completed before `a`). Such a flow
    /// delivered nothing in the window — zero is the honest answer, not a
    /// panic.
    pub fn throughput_over(&self, a: Time, b: Time) -> Rate {
        let (a, b) = match self.completed {
            Some(c) => (a.min(c), b.min(c)),
            None => (a, b),
        };
        if b <= a {
            return Rate::ZERO;
        }
        let d_a = self.delivered.value_at(a).unwrap_or(0.0);
        let d_b = self.delivered.value_at(b).unwrap_or(0.0);
        Rate::from_bytes_per_sec((d_b - d_a).max(0.0) / b.since(a).as_secs_f64())
    }

    /// Total time this flow spent starved: the sum of `window`-sized
    /// slices of its active lifetime `[start, min(completed, end)]` whose
    /// windowed throughput (§4.2 definition over the slice) fell below
    /// `floor`. The trailing partial slice counts with its real width. A
    /// zero `window` treats the whole active lifetime as one slice.
    pub fn starvation_duration(&self, floor: Rate, window: Dur, end: Time) -> Dur {
        let stop = self.active_until(end);
        if stop <= self.start {
            return Dur::ZERO;
        }
        let step = if window.as_nanos() == 0 {
            stop.since(self.start)
        } else {
            window
        };
        let mut starved_ns = 0u64;
        let mut a = self.start;
        while a < stop {
            let b = (a + step).min(stop);
            if self.throughput_over(a, b).bytes_per_sec() < floor.bytes_per_sec() {
                starved_ns += b.since(a).as_nanos();
            }
            a = b;
        }
        Dur(starved_ns)
    }

    /// Mean RTT over `[a, b]`, seconds.
    ///
    /// `None` when the window holds no RTT samples — a flow that never
    /// started, stalled (RTO storm), or whose window predates its first
    /// valid (non-Karn-excluded) sample. Callers must decide explicitly:
    /// `expect` with the scenario's reason when samples are guaranteed,
    /// or a domain-appropriate default when a silent flow is a legal
    /// outcome (starvation scenarios produce exactly such flows).
    pub fn mean_rtt_in(&self, a: Time, b: Time) -> Option<f64> {
        self.rtt.mean_in(a, b)
    }

    /// Min/max RTT over `[a, b]` in seconds — `(d_min, d_max)` of
    /// Definition 1 when measured over the converged region.
    ///
    /// `None` on an empty sample window, exactly as [`Self::mean_rtt_in`].
    pub fn rtt_range_in(&self, a: Time, b: Time) -> Option<(f64, f64)> {
        Some((self.rtt.min_in(a, b)?, self.rtt.max_in(a, b)?))
    }

    /// Fraction of sent bytes declared lost.
    pub fn loss_fraction(&self) -> f64 {
        if self.sent_bytes == 0 {
            0.0
        } else {
            bytes_as_f64(self.lost_bytes) / bytes_as_f64(self.sent_bytes)
        }
    }
}

/// The complete keyed record of one flow in a run: its metrics plus the
/// per-flow counters that used to live in index-parallel `Vec`s on
/// [`SimResult`]. Dereferences to [`FlowMetrics`], so
/// `result.flows[i].throughput_at(..)` reads as before.
#[derive(Clone, Debug)]
pub struct FlowRecord {
    /// The flow this record belongs to.
    pub id: FlowId,
    /// The flow's measurements.
    pub metrics: FlowMetrics,
    /// Tail drops of this flow's packets at the bottleneck.
    pub drops: u64,
    /// Jitter-element clamp violations (nonzero means an adversarial
    /// emulation was infeasible at some instants).
    pub jitter_clamps: u64,
}

impl std::ops::Deref for FlowRecord {
    type Target = FlowMetrics;
    fn deref(&self) -> &FlowMetrics {
        &self.metrics
    }
}

impl std::ops::DerefMut for FlowRecord {
    fn deref_mut(&mut self) -> &mut FlowMetrics {
        &mut self.metrics
    }
}

/// Distribution percentiles over a population (nearest-rank).
#[derive(Clone, Copy, Debug)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Percentiles {
    /// Percentiles of `xs`; `None` when empty.
    pub fn of(xs: &[f64]) -> Option<Percentiles> {
        if xs.is_empty() {
            return None;
        }
        let pct = |p| stats::percentile(xs, p).unwrap_or(f64::NAN);
        Some(Percentiles {
            p50: pct(50.0),
            p95: pct(95.0),
            p99: pct(99.0),
        })
    }
}

/// Population-scale summary of a run: what fraction of N flows finished,
/// how fast, and how long they starved — the paper's starvation story at
/// population scale.
#[derive(Clone, Copy, Debug)]
pub struct PopulationSummary {
    /// Flows in the run.
    pub n: usize,
    /// Flows that completed their finite transfer before the run ended.
    pub completed: usize,
    /// Flow-completion-time distribution in seconds, over completed flows
    /// (`None` when no flow completed).
    pub fct_secs: Option<Percentiles>,
    /// Per-flow starvation-duration distribution in seconds, over all
    /// flows that were active at some point (`None` when none were).
    pub starvation_secs: Option<Percentiles>,
    /// Fraction of flows that starved at all (starvation duration > 0).
    pub starved_fraction: f64,
    /// Jain fairness index over per-flow throughputs.
    pub jain: f64,
}

/// Result of a complete simulation run: one [`FlowRecord`] per flow, in
/// dense [`FlowId`] order (`flows[i].id` is flow `i`).
pub struct SimResult {
    /// Per-flow records, keyed by [`FlowId`] in dense id order.
    pub flows: Vec<FlowRecord>,
    /// Link utilization over the run (busy fraction).
    pub utilization: f64,
    /// When the run ended.
    pub end: Time,
    /// Total simulator events dispatched during the run. Deterministic for
    /// a given scenario; `repro perfbench` divides wall-clock by this to
    /// derive its `ns_per_event` trajectory metric.
    pub events: u64,
}

impl SimResult {
    /// The record of one flow; `None` for unknown ids.
    pub fn flow(&self, id: FlowId) -> Option<&FlowRecord> {
        let r = self.flows.get(id.index())?;
        debug_assert_eq!(r.id, id, "records must be in dense id order");
        Some(r)
    }

    /// Per-flow throughput over the whole run (paper Definition: bytes
    /// acked / elapsed since flow start, clamped to completion).
    pub fn throughputs(&self) -> Vec<Rate> {
        self.flows.iter().map(|f| f.throughput_at(self.end)).collect()
    }

    /// Per-flow throughput over the last `window` of the run — the
    /// "steady-state" number quoted in §5's experiments.
    pub fn steady_throughputs(&self, window: Dur) -> Vec<Rate> {
        let a = if self.end.as_nanos() > window.as_nanos() {
            self.end - window
        } else {
            Time::ZERO
        };
        self.flows
            .iter()
            .map(|f| f.throughput_over(a.max(f.start), self.end))
            .collect()
    }

    /// Max/min throughput ratio (the paper's unfairness measure `s`).
    pub fn throughput_ratio(&self) -> f64 {
        let t: Vec<f64> = self.throughputs().iter().map(|r| r.mbps()).collect();
        stats::max_min_ratio(&t).unwrap_or(1.0)
    }

    /// Jain fairness index over flow throughputs.
    pub fn jain(&self) -> f64 {
        let t: Vec<f64> = self.throughputs().iter().map(|r| r.mbps()).collect();
        stats::jain_index(&t).unwrap_or(1.0)
    }

    /// Total bottleneck drops across flows.
    pub fn total_drops(&self) -> u64 {
        self.flows.iter().map(|f| f.drops).sum()
    }

    /// Total jitter-element clamp violations across flows.
    pub fn total_jitter_clamps(&self) -> u64 {
        self.flows.iter().map(|f| f.jitter_clamps).sum()
    }

    /// Completion times of the flows that finished, in id order.
    pub fn fcts(&self) -> Vec<Dur> {
        self.flows.iter().filter_map(|f| f.fct()).collect()
    }

    /// Per-flow starvation durations (see
    /// [`FlowMetrics::starvation_duration`]), in id order.
    pub fn starvation_durations(&self, floor: Rate, window: Dur) -> Vec<Dur> {
        self.flows
            .iter()
            .map(|f| f.starvation_duration(floor, window, self.end))
            .collect()
    }

    /// The population summary: FCT distribution over completed flows,
    /// starvation-duration distribution (throughput below `floor` per
    /// `window`-sized slice) over all flows, and Jain fairness over N.
    pub fn population(&self, floor: Rate, window: Dur) -> PopulationSummary {
        let fcts: Vec<f64> = self.fcts().iter().map(|d| d.as_secs_f64()).collect();
        let starvation = self.starvation_durations(floor, window);
        let active: Vec<f64> = self
            .flows
            .iter()
            .zip(&starvation)
            .filter(|(f, _)| f.active_until(self.end) > f.start)
            .map(|(_, s)| s.as_secs_f64())
            .collect();
        let starved = starvation.iter().filter(|s| s.as_nanos() > 0).count();
        PopulationSummary {
            n: self.flows.len(),
            completed: fcts.len(),
            fct_secs: Percentiles::of(&fcts),
            starvation_secs: Percentiles::of(&active),
            starved_fraction: if self.flows.is_empty() {
                0.0
            } else {
                bytes_as_f64(count_as_u64(starved)) / bytes_as_f64(count_as_u64(self.flows.len()))
            },
            jain: self.jain(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, metrics: FlowMetrics) -> FlowRecord {
        FlowRecord {
            id: FlowId::from_index(id),
            metrics,
            drops: 0,
            jitter_clamps: 0,
        }
    }

    fn metrics_with_delivery() -> FlowMetrics {
        let mut m = FlowMetrics::new(Time::ZERO);
        // 1 MB after 1 s, 3 MB after 2 s.
        m.delivered.push(Time::from_secs(1), 1e6);
        m.delivered.push(Time::from_secs(2), 3e6);
        m
    }

    #[test]
    fn throughput_at_divides_by_elapsed() {
        let m = metrics_with_delivery();
        // 3 MB over 2 s = 12 Mbit/s.
        assert!((m.throughput_at(Time::from_secs(2)).mbps() - 12.0).abs() < 1e-9);
        assert_eq!(m.throughput_at(Time::ZERO), Rate::ZERO);
    }

    #[test]
    fn throughput_over_window() {
        let m = metrics_with_delivery();
        // Second second: 2 MB = 16 Mbit/s.
        let r = m.throughput_over(Time::from_secs(1), Time::from_secs(2));
        assert!((r.mbps() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_respects_flow_start() {
        let mut m = FlowMetrics::new(Time::from_secs(1));
        m.delivered.push(Time::from_secs(2), 1e6);
        // 1 MB over 1 s since start = 8 Mbit/s.
        assert!((m.throughput_at(Time::from_secs(2)).mbps() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_over_empty_or_inverted_window_is_zero() {
        let m = metrics_with_delivery();
        let t = Time::from_secs(1);
        assert_eq!(m.throughput_over(t, t), Rate::ZERO);
        assert_eq!(m.throughput_over(Time::from_secs(2), t), Rate::ZERO);
    }

    #[test]
    fn throughput_is_departure_aware() {
        // Regression for the pre-workload behaviour: a flow that delivered
        // 2 MB in its first 2 s and then completed used to have its
        // whole-run throughput diluted by the idle tail. Clamping to the
        // completion time reports the lifetime rate instead.
        let mut m = metrics_with_delivery();
        m.completed = Some(Time::from_secs(2));
        // At t = 10 s the flow has been gone for 8 s: rate must still be
        // 3 MB / 2 s = 12 Mbit/s, not 3 MB / 10 s = 2.4 Mbit/s.
        assert!((m.throughput_at(Time::from_secs(10)).mbps() - 12.0).abs() < 1e-9);
        // A window straddling the departure (1 s..4 s) measures only the
        // active part (1 s..2 s): 2 MB / 1 s = 16 Mbit/s.
        let r = m.throughput_over(Time::from_secs(1), Time::from_secs(4));
        assert!((r.mbps() - 16.0).abs() < 1e-9);
        // A window entirely after the departure delivered nothing.
        assert_eq!(
            m.throughput_over(Time::from_secs(3), Time::from_secs(4)),
            Rate::ZERO
        );
    }

    #[test]
    fn fct_is_completion_minus_start() {
        let mut m = FlowMetrics::new(Time::from_secs(1));
        assert_eq!(m.fct(), None);
        m.completed = Some(Time::from_secs(3));
        assert_eq!(m.fct(), Some(Dur::from_secs(2)));
    }

    #[test]
    fn starvation_duration_counts_windows_below_the_floor() {
        let mut m = FlowMetrics::new(Time::ZERO);
        // 8 Mbit/s in second 1, nothing in second 2, 8 Mbit/s in second 3.
        m.delivered.push(Time::from_secs(1), 1e6);
        m.delivered.push(Time::from_secs(3), 2e6);
        let floor = Rate::from_mbps(1.0);
        let s = m.starvation_duration(floor, Dur::from_secs(1), Time::from_secs(3));
        assert_eq!(s, Dur::from_secs(1), "exactly the silent middle second");
        // A flow delivering steadily above the floor never starves.
        let mut steady = FlowMetrics::new(Time::ZERO);
        for sec in 1..=3 {
            steady.delivered.push(Time::from_secs(sec), 1e6 * sec as f64);
        }
        let s = steady.starvation_duration(floor, Dur::from_secs(1), Time::from_secs(3));
        assert_eq!(s, Dur::ZERO);
    }

    #[test]
    fn starvation_duration_clamps_to_completion() {
        let mut m = FlowMetrics::new(Time::ZERO);
        m.delivered.push(Time::from_secs(1), 1e6);
        m.completed = Some(Time::from_secs(1));
        // Run lasts 10 s but the flow was only active for 1 s — the idle
        // tail after departure is not starvation.
        let s = m.starvation_duration(Rate::from_mbps(100.0), Dur::from_secs(1), Time::from_secs(10));
        assert_eq!(s, Dur::from_secs(1));
    }

    #[test]
    fn steady_throughputs_with_late_starting_flow() {
        // Regression: a flow starting within `window` of the run's end
        // (here: exactly at it) clamps the window to an empty interval,
        // which used to panic. It must report zero steady throughput.
        let mut early = FlowMetrics::new(Time::ZERO);
        early.delivered.push(Time::from_secs(5), 5e6);
        let late = FlowMetrics::new(Time::from_secs(5));
        let inside = FlowMetrics::new(Time::from_secs(4));
        let r = SimResult {
            flows: vec![rec(0, early), rec(1, late), rec(2, inside)],
            utilization: 0.9,
            end: Time::from_secs(5),
            events: 0,
        };
        let steady = r.steady_throughputs(Dur::from_secs(2));
        assert!(steady[0].mbps() > 0.0);
        assert_eq!(steady[1], Rate::ZERO);
        assert_eq!(steady[2], Rate::ZERO); // started inside window, no delivery
    }

    #[test]
    fn loss_fraction() {
        let mut m = FlowMetrics::new(Time::ZERO);
        m.sent_bytes = 100_000;
        m.lost_bytes = 2_000;
        assert!((m.loss_fraction() - 0.02).abs() < 1e-12);
        assert_eq!(FlowMetrics::new(Time::ZERO).loss_fraction(), 0.0);
    }

    #[test]
    fn rtt_range() {
        let mut m = FlowMetrics::new(Time::ZERO);
        m.rtt.push(Time::from_millis(10), 0.050);
        m.rtt.push(Time::from_millis(20), 0.055);
        m.rtt.push(Time::from_millis(30), 0.052);
        let (lo, hi) = m.rtt_range_in(Time::ZERO, Time::from_secs(1)).unwrap();
        assert_eq!((lo, hi), (0.050, 0.055));
    }

    #[test]
    fn sim_result_ratio() {
        let mut a = FlowMetrics::new(Time::ZERO);
        a.delivered.push(Time::from_secs(1), 10e6);
        let mut b = FlowMetrics::new(Time::ZERO);
        b.delivered.push(Time::from_secs(1), 1e6);
        let r = SimResult {
            flows: vec![rec(0, a), rec(1, b)],
            utilization: 0.9,
            end: Time::from_secs(1),
            events: 0,
        };
        assert!((r.throughput_ratio() - 10.0).abs() < 1e-9);
        assert!(r.jain() < 1.0);
    }

    #[test]
    fn flow_lookup_by_id() {
        let r = SimResult {
            flows: vec![rec(0, FlowMetrics::new(Time::ZERO)), rec(1, FlowMetrics::new(Time::ZERO))],
            utilization: 0.0,
            end: Time::from_secs(1),
            events: 0,
        };
        assert!(r.flow(FlowId::from_index(1)).is_some());
        assert!(r.flow(FlowId::from_index(2)).is_none());
    }

    #[test]
    fn population_summary_over_a_mixed_population() {
        // Three flows: one fast finisher, one slow finisher, one bulk flow
        // that starves in its second half.
        let mut fast = FlowMetrics::new(Time::ZERO);
        fast.delivered.push(Time::from_secs(1), 1e6);
        fast.completed = Some(Time::from_secs(1));

        let mut slow = FlowMetrics::new(Time::ZERO);
        slow.delivered.push(Time::from_secs(4), 1e6);
        slow.completed = Some(Time::from_secs(4));

        let mut bulk = FlowMetrics::new(Time::ZERO);
        bulk.delivered.push(Time::from_secs(2), 4e6);

        let r = SimResult {
            flows: vec![rec(0, fast), rec(1, slow), rec(2, bulk)],
            utilization: 0.9,
            end: Time::from_secs(4),
            events: 0,
        };
        let p = r.population(Rate::from_mbps(1.0), Dur::from_secs(1));
        assert_eq!(p.n, 3);
        assert_eq!(p.completed, 2);
        let fct = p.fct_secs.unwrap();
        assert!((fct.p50 - 1.0).abs() < 1e-9 || (fct.p50 - 4.0).abs() < 1e-9);
        assert!((fct.p99 - 4.0).abs() < 1e-9);
        // slow starved (0.25 MB/s < 1 Mbit/s floor? 0.25 MB/s = 2 Mbit/s,
        // above floor) — recompute: slow delivers 1e6 bytes over 4 s =
        // 2 Mbit/s overall but nothing until t=4 in per-second windows
        // except the last. bulk is silent after t=2.
        assert!(p.starved_fraction > 0.0);
        assert!(p.jain > 0.0 && p.jain <= 1.0);
    }
}

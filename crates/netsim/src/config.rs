//! Simulation configuration types.

use crate::jitter::Jitter;
use cca::BoxCca;
use simcore::units::{f64_as_bytes, Dur, Rate, Time};

/// Transport reliability model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// TCP-like: cumulative ACKs, duplicate-ACK fast retransmit, NewReno
    /// recovery, RTO go-back-N. Used by Reno/Cubic/Vegas-family flows.
    #[default]
    Reliable,
    /// UDP-like (the PCC implementations): every packet is acknowledged
    /// individually, nothing is retransmitted, and a packet is deemed lost
    /// as soon as a later-sent packet is acknowledged (the §3 model path
    /// never reorders a flow's packets). Loss becomes a *signal*, not a
    /// recovery problem — matching how PCC's monitor intervals consume it.
    Datagram,
}

/// Receiver acknowledgement policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AckPolicy {
    /// Acknowledge every data packet immediately.
    PerPacket,
    /// Classic delayed ACKs: acknowledge every `max_pkts`-th packet, or
    /// after `timeout` if fewer arrive. Out-of-order arrivals are ACKed
    /// immediately (so duplicate ACKs still signal loss). This is Figure 7's
    /// "delayed ACKs of up to 4 packets".
    Delayed {
        /// ACK after this many data packets.
        max_pkts: u64,
        /// ...or after this long.
        timeout: Dur,
    },
    /// Time-quantized ACK aggregation: ACKs leave the receiver only at
    /// integer multiples of `period` (the §5.3 PCC Vivace scenario with a
    /// 60 ms period). All data that arrived since the last boundary is
    /// covered by a single cumulative ACK released at the boundary.
    Quantized {
        /// The release period.
        period: Dur,
    },
}

/// Bottleneck link configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Drain rate `C`.
    pub rate: Rate,
    /// Tail-drop buffer in bytes. Use [`LinkConfig::ample_buffer`] for the
    /// paper's "large enough to never overflow" queues.
    pub buffer_bytes: u64,
    /// ECN marking threshold in bytes of backlog (§6.4). `None` disables.
    pub ecn_threshold: Option<u64>,
}

impl LinkConfig {
    /// A link with an explicit tail-drop buffer and ECN disabled.
    pub fn new(rate: Rate, buffer_bytes: u64) -> LinkConfig {
        LinkConfig {
            rate,
            buffer_bytes,
            ecn_threshold: None,
        }
    }

    /// Builder: enable threshold ECN marking.
    pub fn with_ecn(mut self, threshold_bytes: u64) -> LinkConfig {
        self.ecn_threshold = Some(threshold_bytes);
        self
    }
}

/// Seconds of drain held by [`LinkConfig::ample_buffer`]:
/// `buffer = rate × AMPLE_DRAIN_SECS`.
pub const AMPLE_DRAIN_SECS: f64 = 100.0;

impl LinkConfig {
    /// A buffer so large delay-bounding CCAs never overflow it:
    /// [`AMPLE_DRAIN_SECS`] (100 s) of drain at `rate` — i.e. 100 BDPs at a
    /// full second of RTT, thousands at experiment RTTs.
    pub fn ample_buffer(rate: Rate) -> LinkConfig {
        LinkConfig::new(rate, f64_as_bytes(rate.bytes_per_sec() * AMPLE_DRAIN_SECS))
    }

    /// A buffer of `n` bandwidth-delay products for the given RTT.
    pub fn bdp_buffer(rate: Rate, rtt: Dur, n: f64) -> LinkConfig {
        LinkConfig::new(
            rate,
            f64_as_bytes(rate.bytes_per_sec() * rtt.as_secs_f64() * n).max(3000),
        )
    }
}

/// Per-flow configuration.
///
/// `Clone` deep-copies the boxed CCA (via `CongestionControl::clone_box`),
/// so cloned configs replay identically — the sweep engine relies on this to
/// expand a scenario grid once and run it at any worker count.
#[derive(Clone)]
pub struct FlowConfig {
    /// The congestion-control algorithm driving this flow's sender.
    pub cca: BoxCca,
    /// Packet size in bytes (everything the paper runs uses 1500).
    pub mss: u64,
    /// Minimum propagation RTT `Rm` for this flow's path.
    pub rm: Dur,
    /// Non-congestive delay element on this flow's path.
    pub jitter: Jitter,
    /// Receiver ACK behaviour.
    pub ack_policy: AckPolicy,
    /// Reliability model (TCP-like or PCC's UDP-like).
    pub transport: Transport,
    /// Bernoulli random-loss probability on this flow's data path
    /// (the §5.4 PCC Allegro scenario uses 0.02).
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// When the flow starts sending.
    pub start: Time,
    /// Optional application-rate cap (`None` = bulk flow).
    pub app_limit: Option<Rate>,
    /// Byte budget for a finite transfer: the flow sends
    /// `ceil(size / mss)` packets and retires once they are delivered
    /// (reliable) or resolved (datagram). `None` = bulk, runs to the end.
    pub size: Option<u64>,
    /// Audited jitter-bound override for this flow. A test hook: declaring
    /// a bound *below* the jitter policy's real one seeds a violation the
    /// auditor must catch — the mutation test for the audit machinery
    /// itself. Not for production configs.
    pub audit_jitter_bound: Option<Dur>,
}

impl FlowConfig {
    /// A bulk flow with a clean path: per-packet ACKs, no jitter, no loss.
    pub fn bulk(cca: BoxCca, rm: Dur) -> FlowConfig {
        FlowConfig {
            cca,
            mss: 1500,
            rm,
            jitter: Jitter::None,
            ack_policy: AckPolicy::PerPacket,
            transport: Transport::Reliable,
            loss_rate: 0.0,
            loss_seed: 0,
            start: Time::ZERO,
            app_limit: None,
            size: None,
            audit_jitter_bound: None,
        }
    }

    /// Builder: replace the jitter element.
    pub fn with_jitter(mut self, j: Jitter) -> FlowConfig {
        self.jitter = j;
        self
    }

    /// Builder: replace the ACK policy.
    pub fn with_ack_policy(mut self, p: AckPolicy) -> FlowConfig {
        self.ack_policy = p;
        self
    }

    /// Builder: replace the transport reliability model.
    pub fn with_transport(mut self, t: Transport) -> FlowConfig {
        self.transport = t;
        self
    }

    /// Builder: Bernoulli loss on the data path.
    pub fn with_loss(mut self, rate: f64, seed: u64) -> FlowConfig {
        self.loss_rate = rate;
        self.loss_seed = seed;
        self
    }

    /// Builder: delayed start.
    pub fn with_start(mut self, t: Time) -> FlowConfig {
        self.start = t;
        self
    }

    /// Builder: replace the packet size.
    pub fn with_mss(mut self, mss: u64) -> FlowConfig {
        self.mss = mss;
        self
    }

    /// Builder: cap the application's sending rate (`None` = bulk flow).
    pub fn with_app_limit(mut self, limit: Option<Rate>) -> FlowConfig {
        self.app_limit = limit;
        self
    }

    /// Builder: a finite transfer of `bytes`; the flow retires when its
    /// budget is delivered, recording a completion time.
    pub fn with_size(mut self, bytes: u64) -> FlowConfig {
        self.size = Some(bytes);
        self
    }

    /// Builder: override the audited jitter bound for this flow (the
    /// fault-injection hook; see [`FlowConfig::audit_jitter_bound`]).
    pub fn with_audit_jitter_bound(mut self, bound: Dur) -> FlowConfig {
        self.audit_jitter_bound = Some(bound);
        self
    }
}

/// A complete scenario.
#[derive(Clone)]
pub struct SimConfig {
    /// The shared bottleneck.
    pub link: LinkConfig,
    /// The competing flows.
    pub flows: Vec<FlowConfig>,
    /// How long to simulate.
    pub duration: Dur,
    /// Decimation interval for cwnd/rate series (RTT samples are always
    /// recorded exactly; set this small only for short runs).
    pub sample_every: Dur,
    /// Trace-sink factory (`None` = no tracing, the zero-cost default).
    /// A factory rather than a sink keeps the config `Clone`: every
    /// `Network` builds its own sink at construction.
    pub trace: Option<simcore::trace::TraceFactory>,
    /// Run the scenario under the runtime invariant auditor
    /// ([`simcore::trace::Auditor`]); any trace sink becomes its
    /// downstream consumer. A violation panics with event context, which
    /// the sweep engine's per-job isolation reports as a failed row.
    pub audit: bool,
    /// Optional dynamic workload: a schedule of flow arrivals with finite
    /// sizes that spawns flows mid-run (their ids continue after `flows`
    /// in arrival order) and retires them when delivered.
    pub workload: Option<crate::workload::Workload>,
}

impl SimConfig {
    /// A scenario with 10 ms series decimation and no tracing.
    pub fn new(link: LinkConfig, flows: Vec<FlowConfig>, duration: Dur) -> SimConfig {
        SimConfig {
            link,
            flows,
            duration,
            sample_every: Dur::from_millis(10),
            trace: None,
            audit: false,
            workload: None,
        }
    }

    /// Builder: replace the series decimation interval.
    pub fn with_sample_every(mut self, every: Dur) -> SimConfig {
        self.sample_every = every;
        self
    }

    /// Builder: attach a trace-sink factory; each run built from this
    /// config creates one sink and streams every simulator event into it.
    pub fn with_trace(mut self, factory: simcore::trace::TraceFactory) -> SimConfig {
        self.trace = Some(factory);
        self
    }

    /// Builder: enable (or disable) the runtime invariant auditor.
    pub fn with_audit(mut self, on: bool) -> SimConfig {
        self.audit = on;
        self
    }

    /// Builder: attach a dynamic workload (scheduled flow arrivals with
    /// finite sizes; see [`crate::workload::Workload`]).
    pub fn with_workload(mut self, w: crate::workload::Workload) -> SimConfig {
        self.workload = Some(w);
        self
    }
}

/// A single-flow path specification: bottleneck rate, propagation RTT, run
/// length, and the optional path impairments (random jitter, Bernoulli
/// loss). This is the one spec type shared by `starvation::runner`'s
/// ideal-path runs (where the impairments stay zero) and
/// `testkit::harness`'s fixtures — both expand it into `LinkConfig` /
/// `FlowConfig` through the same methods instead of re-deriving them.
#[derive(Clone, Copy, Debug)]
pub struct PathSpec {
    /// Bottleneck rate `C`.
    pub rate: Rate,
    /// Propagation RTT `Rm`.
    pub rm: Dur,
    /// How long to run.
    pub duration: Dur,
    /// Random-jitter bound `D` (`ZERO` = no jitter element).
    pub jitter: Dur,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
    /// Bernoulli loss probability on the data path (`0` = no loss element).
    pub loss: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
}

impl PathSpec {
    /// An ideal path: no jitter, no loss.
    pub fn new(rate: Rate, rm: Dur, duration: Dur) -> PathSpec {
        PathSpec {
            rate,
            rm,
            duration,
            jitter: Dur::ZERO,
            jitter_seed: 0,
            loss: 0.0,
            loss_seed: 0,
        }
    }

    /// Builder: i.i.d. uniform jitter in `[0, max]` from a seeded stream.
    pub fn with_jitter(mut self, max: Dur, seed: u64) -> PathSpec {
        self.jitter = max;
        self.jitter_seed = seed;
        self
    }

    /// Builder: Bernoulli loss on the data path.
    pub fn with_loss(mut self, p: f64, seed: u64) -> PathSpec {
        self.loss = p;
        self.loss_seed = seed;
        self
    }

    /// The ample-buffer bottleneck this spec describes.
    pub fn link(&self) -> LinkConfig {
        LinkConfig::ample_buffer(self.rate)
    }

    /// A bulk flow for `cca` on this path, with the spec's impairments.
    pub fn flow(&self, cca: BoxCca) -> FlowConfig {
        let mut f = FlowConfig::bulk(cca, self.rm);
        if self.jitter > Dur::ZERO {
            f = f.with_jitter(crate::jitter::Jitter::Random {
                max: self.jitter,
                rng: simcore::rng::Xoshiro256::new(self.jitter_seed),
            });
        }
        if self.loss > 0.0 {
            f = f.with_loss(self.loss, self.loss_seed);
        }
        f
    }

    /// The complete single-flow scenario for `cca`.
    pub fn sim(&self, cca: BoxCca) -> SimConfig {
        SimConfig::new(self.link(), vec![self.flow(cca)], self.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::ConstCwnd;

    #[test]
    fn ample_buffer_is_huge() {
        let l = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        assert!(l.buffer_bytes > 1_000_000_000);
    }

    #[test]
    fn bdp_buffer_math() {
        // 120 Mbit/s × 40 ms = 600 kB; 1 BDP.
        let l = LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0);
        assert_eq!(l.buffer_bytes, 600_000);
    }

    #[test]
    fn ample_buffer_matches_named_constant() {
        let rate = Rate::from_mbps(120.0);
        let l = LinkConfig::ample_buffer(rate);
        assert_eq!(l.buffer_bytes, (rate.bytes_per_sec() * AMPLE_DRAIN_SECS) as u64);
    }

    #[test]
    fn configs_clone_deeply() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(24.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::ten_packets()), Dur::from_millis(40))
            .with_loss(0.01, 3);
        let cfg = SimConfig::new(link, vec![flow], Dur::from_secs(2))
            .with_sample_every(Dur::from_millis(5));
        let copy = cfg.clone();
        assert_eq!(copy.flows.len(), 1);
        assert_eq!(copy.flows[0].cca.cwnd(), cfg.flows[0].cca.cwnd());
        assert_eq!(copy.sample_every, Dur::from_millis(5));
        // Running both must be possible independently (deep copy of the CCA).
        use crate::sim::Network;
        let a = Network::new(cfg).run();
        let b = Network::new(copy).run();
        assert_eq!(a.flows[0].sent_bytes, b.flows[0].sent_bytes);
    }

    #[test]
    fn mss_and_app_limit_builders() {
        let f = FlowConfig::bulk(Box::new(ConstCwnd::ten_packets()), Dur::from_millis(40))
            .with_mss(1200)
            .with_app_limit(Some(Rate::from_mbps(2.0)));
        assert_eq!(f.mss, 1200);
        assert!((f.app_limit.unwrap().mbps() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn path_spec_expands_to_matching_configs() {
        let spec = PathSpec::new(
            Rate::from_mbps(24.0),
            Dur::from_millis(40),
            Dur::from_secs(3),
        )
        .with_jitter(Dur::from_millis(5), 11)
        .with_loss(0.02, 12);
        assert_eq!(spec.link().buffer_bytes, LinkConfig::ample_buffer(spec.rate).buffer_bytes);
        let f = spec.flow(Box::new(ConstCwnd::ten_packets()));
        assert!(matches!(f.jitter, crate::jitter::Jitter::Random { max, .. } if max == Dur::from_millis(5)));
        assert_eq!(f.loss_rate, 0.02);
        assert_eq!(f.loss_seed, 12);
        let cfg = spec.sim(Box::new(ConstCwnd::ten_packets()));
        assert_eq!(cfg.flows.len(), 1);
        assert_eq!(cfg.duration, Dur::from_secs(3));
    }

    #[test]
    fn builders_compose() {
        let f = FlowConfig::bulk(Box::new(ConstCwnd::ten_packets()), Dur::from_millis(40))
            .with_loss(0.02, 7)
            .with_ack_policy(AckPolicy::Quantized {
                period: Dur::from_millis(60),
            })
            .with_start(Time::from_secs(1))
            .with_size(600_000);
        assert_eq!(f.loss_rate, 0.02);
        assert_eq!(f.start, Time::from_secs(1));
        assert_eq!(f.size, Some(600_000));
        assert!(matches!(f.ack_policy, AckPolicy::Quantized { .. }));
    }
}

//! Simulation configuration types.

use crate::jitter::Jitter;
use cca::BoxCca;
use simcore::units::{Dur, Rate, Time};

/// Transport reliability model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Transport {
    /// TCP-like: cumulative ACKs, duplicate-ACK fast retransmit, NewReno
    /// recovery, RTO go-back-N. Used by Reno/Cubic/Vegas-family flows.
    #[default]
    Reliable,
    /// UDP-like (the PCC implementations): every packet is acknowledged
    /// individually, nothing is retransmitted, and a packet is deemed lost
    /// as soon as a later-sent packet is acknowledged (the §3 model path
    /// never reorders a flow's packets). Loss becomes a *signal*, not a
    /// recovery problem — matching how PCC's monitor intervals consume it.
    Datagram,
}

/// Receiver acknowledgement policy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AckPolicy {
    /// Acknowledge every data packet immediately.
    PerPacket,
    /// Classic delayed ACKs: acknowledge every `max_pkts`-th packet, or
    /// after `timeout` if fewer arrive. Out-of-order arrivals are ACKed
    /// immediately (so duplicate ACKs still signal loss). This is Figure 7's
    /// "delayed ACKs of up to 4 packets".
    Delayed {
        /// ACK after this many data packets.
        max_pkts: u64,
        /// ...or after this long.
        timeout: Dur,
    },
    /// Time-quantized ACK aggregation: ACKs leave the receiver only at
    /// integer multiples of `period` (the §5.3 PCC Vivace scenario with a
    /// 60 ms period). All data that arrived since the last boundary is
    /// covered by a single cumulative ACK released at the boundary.
    Quantized {
        /// The release period.
        period: Dur,
    },
}

/// Bottleneck link configuration.
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// Drain rate `C`.
    pub rate: Rate,
    /// Tail-drop buffer in bytes. Use [`LinkConfig::ample_buffer`] for the
    /// paper's "large enough to never overflow" queues.
    pub buffer_bytes: u64,
    /// ECN marking threshold in bytes of backlog (§6.4). `None` disables.
    pub ecn_threshold: Option<u64>,
}

impl LinkConfig {
    /// Builder: enable threshold ECN marking.
    pub fn with_ecn(mut self, threshold_bytes: u64) -> LinkConfig {
        self.ecn_threshold = Some(threshold_bytes);
        self
    }
}

impl LinkConfig {
    /// A buffer so large delay-bounding CCAs never overflow it (1000 BDPs
    /// at 1 s of RTT would still fit for typical experiment rates).
    pub fn ample_buffer(rate: Rate) -> LinkConfig {
        LinkConfig {
            rate,
            buffer_bytes: (rate.bytes_per_sec() * 100.0) as u64,
            ecn_threshold: None,
        }
    }

    /// A buffer of `n` bandwidth-delay products for the given RTT.
    pub fn bdp_buffer(rate: Rate, rtt: Dur, n: f64) -> LinkConfig {
        LinkConfig {
            rate,
            buffer_bytes: ((rate.bytes_per_sec() * rtt.as_secs_f64() * n) as u64).max(3000),
            ecn_threshold: None,
        }
    }
}

/// Per-flow configuration.
pub struct FlowConfig {
    /// The congestion-control algorithm driving this flow's sender.
    pub cca: BoxCca,
    /// Packet size in bytes (everything the paper runs uses 1500).
    pub mss: u64,
    /// Minimum propagation RTT `Rm` for this flow's path.
    pub rm: Dur,
    /// Non-congestive delay element on this flow's path.
    pub jitter: Jitter,
    /// Receiver ACK behaviour.
    pub ack_policy: AckPolicy,
    /// Reliability model (TCP-like or PCC's UDP-like).
    pub transport: Transport,
    /// Bernoulli random-loss probability on this flow's data path
    /// (the §5.4 PCC Allegro scenario uses 0.02).
    pub loss_rate: f64,
    /// Seed for the loss process.
    pub loss_seed: u64,
    /// When the flow starts sending.
    pub start: Time,
    /// Optional application-rate cap (`None` = bulk flow).
    pub app_limit: Option<Rate>,
}

impl FlowConfig {
    /// A bulk flow with a clean path: per-packet ACKs, no jitter, no loss.
    pub fn bulk(cca: BoxCca, rm: Dur) -> FlowConfig {
        FlowConfig {
            cca,
            mss: 1500,
            rm,
            jitter: Jitter::None,
            ack_policy: AckPolicy::PerPacket,
            transport: Transport::Reliable,
            loss_rate: 0.0,
            loss_seed: 0,
            start: Time::ZERO,
            app_limit: None,
        }
    }

    /// Builder: replace the jitter element.
    pub fn with_jitter(mut self, j: Jitter) -> FlowConfig {
        self.jitter = j;
        self
    }

    /// Builder: replace the ACK policy.
    pub fn with_ack_policy(mut self, p: AckPolicy) -> FlowConfig {
        self.ack_policy = p;
        self
    }

    /// Builder: UDP-like datagram transport (PCC flows).
    pub fn datagram(mut self) -> FlowConfig {
        self.transport = Transport::Datagram;
        self
    }

    /// Builder: Bernoulli loss on the data path.
    pub fn with_loss(mut self, rate: f64, seed: u64) -> FlowConfig {
        self.loss_rate = rate;
        self.loss_seed = seed;
        self
    }

    /// Builder: delayed start.
    pub fn starting_at(mut self, t: Time) -> FlowConfig {
        self.start = t;
        self
    }
}

/// A complete scenario.
pub struct SimConfig {
    /// The shared bottleneck.
    pub link: LinkConfig,
    /// The competing flows.
    pub flows: Vec<FlowConfig>,
    /// How long to simulate.
    pub duration: Dur,
    /// Decimation interval for cwnd/rate series (RTT samples are always
    /// recorded exactly; set this small only for short runs).
    pub sample_every: Dur,
}

impl SimConfig {
    /// A scenario with 10 ms series decimation.
    pub fn new(link: LinkConfig, flows: Vec<FlowConfig>, duration: Dur) -> SimConfig {
        SimConfig {
            link,
            flows,
            duration,
            sample_every: Dur::from_millis(10),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::ConstCwnd;

    #[test]
    fn ample_buffer_is_huge() {
        let l = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        assert!(l.buffer_bytes > 1_000_000_000);
    }

    #[test]
    fn bdp_buffer_math() {
        // 120 Mbit/s × 40 ms = 600 kB; 1 BDP.
        let l = LinkConfig::bdp_buffer(Rate::from_mbps(120.0), Dur::from_millis(40), 1.0);
        assert_eq!(l.buffer_bytes, 600_000);
    }

    #[test]
    fn builders_compose() {
        let f = FlowConfig::bulk(Box::new(ConstCwnd::ten_packets()), Dur::from_millis(40))
            .with_loss(0.02, 7)
            .with_ack_policy(AckPolicy::Quantized {
                period: Dur::from_millis(60),
            })
            .starting_at(Time::from_secs(1));
        assert_eq!(f.loss_rate, 0.02);
        assert_eq!(f.start, Time::from_secs(1));
        assert!(matches!(f.ack_policy, AckPolicy::Quantized { .. }));
    }
}

//! Per-flow packet state: the arena store and its executable reference.
//!
//! The sender tracks every transmitted-but-unresolved sequence in one of
//! three disjoint states — *outstanding* (in flight), *sacked* (received
//! above the cumulative point), or *limbo* (SACKed then orphaned by an
//! RTO) — plus a per-recovery-episode *retx-done* mark. The original
//! implementation kept these in a `BTreeMap<u64, SentPkt>` and three
//! `BTreeSet<u64>`s; SACK processing probed them seq-by-seq, and on
//! loss-heavy scenarios those pointer-chasing probes dominated the whole
//! simulator (`run/bbr-two-flow` spent ~85% of its ACK path there).
//!
//! [`PktStore`] replaces all four containers with a single flat slot
//! arena indexed by sequence number. Sequence numbers of one flow are
//! dense — fresh data extends the top, the cumulative ACK prunes the
//! bottom — so `slot = &slots[seq - origin]` is exact, a state probe is
//! one flag load instead of a tree descent, and the SACK hole walks in
//! `process_ack`/`detect_sack_losses` become linear scans over
//! contiguous 32-byte slots.
//!
//! Invariants (checked in debug builds, relied on everywhere):
//!
//! * **Disjointness** — a slot carries at most one of `OUTSTANDING`,
//!   `SACKED`, `LIMBO`. The retx-done mark is orthogonal (it outlives the
//!   outstanding copy it was set for).
//! * **Live window** — every flagged slot has `base ≤ seq < top` where
//!   `base = cum_acked + 1`: [`PktStore::advance_cum`] clears every flag
//!   it passes, so scans never need to look below `base`. Retransmissions
//!   re-enter above `base` (the retx queue is pruned to `> cum` on every
//!   cumulative advance), and fresh data extends `top` by exactly one.
//! * **Monotone max** — `sacked_max` only needs recomputing when the
//!   sacked population empties: pruning removes from below, so a
//!   non-empty population keeps its maximum.
//! * **Epoch retx-done** — the per-episode retx-done set is cleared in
//!   O(1) by bumping `epoch`; a slot's mark counts only when its stamped
//!   epoch matches.
//!
//! Byte counts (`outstanding_bytes`, `unresolved_bytes`) are maintained
//! incrementally from per-packet lengths stored in the slots — not
//! derived as `count * mss` — so the auditor's byte-accounting identity
//! stays exact even for flows whose final segment is shorter than one
//! MSS.
//!
//! [`RefStore`] preserves the original B-tree containers verbatim behind
//! the same [`SeqStore`] trait. It exists as the oracle for the
//! metamorphic equivalence suite (`tests/arena_equivalence.rs`): a
//! `Network::<RefStore>` must reproduce the committed golden trace
//! digests and bit-identical `SimResult`s against the arena.

use simcore::units::{count_as_u64, Time};
use std::collections::{BTreeMap, BTreeSet};

/// A transmitted-but-unacknowledged packet, as the sender remembers it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SentPkt {
    /// When the (most recent copy of the) packet left the sender.
    pub sent_at: Time,
    /// Sender's `delivered` counter at send time (delivery-rate echo).
    pub delivered_at_send: u64,
    /// Wire length of this packet.
    pub bytes: u64,
    /// Whether this in-flight copy is a retransmission.
    pub retransmit: bool,
}

/// Storage of one flow's per-sequence packet state.
///
/// The contract mirrors the sender's original container operations
/// one-for-one; every method documents the B-tree phrase it replaces.
/// All sequence scans yield ascending order — the CCA observes losses in
/// that order, so it is part of the determinism contract.
pub trait SeqStore: Default {
    /// Track `seq` as outstanding (`outstanding.insert(seq, pkt)`).
    fn insert(&mut self, seq: u64, pkt: SentPkt);
    /// The outstanding packet at `seq`, if any (`outstanding.get`).
    fn get(&self, seq: u64) -> Option<SentPkt>;
    /// Stop tracking an outstanding `seq` (`outstanding.remove`).
    fn remove(&mut self, seq: u64) -> Option<SentPkt>;
    /// Whether nothing is in flight (`outstanding.is_empty()`).
    fn is_outstanding_empty(&self) -> bool;
    /// Total bytes in flight (replaces `outstanding.len() * mss`).
    fn outstanding_bytes(&self) -> u64;
    /// Bytes SACKed or RTO-orphaned above the cumulative point
    /// (replaces `(sacked.len() + limbo.len()) * mss`).
    fn unresolved_bytes(&self) -> u64;
    /// Move every outstanding sequence in `lo..=hi` to sacked (the SACK
    /// block merge loop).
    fn sack_range(&mut self, lo: u64, hi: u64);
    /// Highest currently-sacked sequence (`sacked.iter().next_back()`).
    fn max_sacked(&self) -> Option<u64>;
    /// The cumulative ACK advanced to `new_cum`: drop every tracked
    /// state at `seq <= new_cum` (the remove loop plus both
    /// `split_off(&(new_cum + 1))` prunes).
    fn advance_cum(&mut self, new_cum: u64);
    /// End the recovery episode (`retx_done.clear()`).
    fn clear_retx_done(&mut self);
    /// Collect `(seq, sent_at, bytes)` of every outstanding hole at
    /// `seq <= limit` — not yet retransmitted this episode and not
    /// itself a retransmission — in ascending order.
    fn collect_holes(&self, limit: u64, out: &mut Vec<(u64, Time, u64)>);
    /// Declare a hole lost: drop it from outstanding and mark it
    /// retransmitted for this episode (`outstanding.remove` +
    /// `retx_done.insert`).
    fn mark_hole_retx(&mut self, seq: u64);
    /// Collect `(seq, sent_at, bytes)` of every outstanding sequence
    /// strictly below `seq`, ascending (the datagram go-front scan).
    fn collect_below(&self, seq: u64, out: &mut Vec<(u64, Time, u64)>);
    /// Retransmission timeout: drain every outstanding sequence
    /// (ascending) into `out`, orphan the sacked set into limbo, and
    /// clear the episode's retx-done marks.
    fn rto_reset(&mut self, out: &mut Vec<u64>);
}

// ------------------------------------------------------------- arena ----

/// Slot state flags. `OUTSTANDING`/`SACKED`/`LIMBO` are mutually
/// exclusive; `RETRANSMIT` qualifies an outstanding copy; `RETX_DONE`
/// counts only when the slot's stamped epoch is current.
const OUTSTANDING: u8 = 1;
const SACKED: u8 = 2;
const LIMBO: u8 = 4;
const RETRANSMIT: u8 = 8;
const RETX_DONE: u8 = 16;

/// One tracked sequence: 32 bytes, two per cache line.
#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    sent_at: Time,
    delivered_at_send: u64,
    bytes: u64,
    retx_epoch: u32,
    flags: u8,
}

/// The flat arena store (see the module docs for layout and invariants).
#[derive(Debug, Default)]
pub struct PktStore {
    /// Slot `i` is sequence `origin + i`.
    slots: Vec<Slot>,
    /// Sequence number of `slots[0]`; advances only on compaction.
    origin: u64,
    /// Lowest possibly-live sequence: `cum_acked + 1`.
    base: u64,
    outstanding_count: u64,
    outstanding_bytes: u64,
    sacked_count: u64,
    sacked_bytes: u64,
    sacked_max: Option<u64>,
    limbo_count: u64,
    limbo_bytes: u64,
    /// Current recovery episode; bumping it clears every retx-done mark.
    epoch: u32,
}

impl PktStore {
    /// One past the highest tracked sequence.
    #[inline]
    fn top(&self) -> u64 {
        self.origin + count_as_u64(self.slots.len())
    }

    #[inline]
    fn slot(&self, seq: u64) -> Option<&Slot> {
        if seq < self.origin || seq >= self.top() {
            return None;
        }
        Some(&self.slots[(seq - self.origin) as usize])
    }

    #[inline]
    fn retx_done(&self, s: &Slot) -> bool {
        s.flags & RETX_DONE != 0 && s.retx_epoch == self.epoch
    }

    /// Ensure a slot exists for `seq`, compacting the dead prefix below
    /// `base` away when it has grown to half the arena. Amortized O(1):
    /// each sequence is copied at most a constant number of times.
    // simlint: hot-root
    fn grow_for(&mut self, seq: u64) {
        let need = (seq - self.origin) as usize + 1;
        if need <= self.slots.len() {
            return;
        }
        let dead = (self.base - self.origin) as usize;
        if dead > 0 && dead >= self.slots.len() / 2 {
            self.slots.copy_within(dead.., 0);
            let live = self.slots.len() - dead;
            self.slots.truncate(live);
            self.origin = self.base;
        }
        let need = (seq - self.origin) as usize + 1;
        self.slots.resize(need, Slot::default());
    }

    /// Clear one slot's state flag, keeping counters exact. The retx-done
    /// mark survives (it is epoch-gated, not state-gated).
    #[inline]
    fn clear_state(&mut self, seq: u64) {
        let i = (seq - self.origin) as usize;
        let s = &mut self.slots[i];
        match s.flags & (OUTSTANDING | SACKED | LIMBO) {
            0 => {}
            f if f == OUTSTANDING => {
                self.outstanding_count -= 1;
                self.outstanding_bytes -= s.bytes;
            }
            f if f == SACKED => {
                self.sacked_count -= 1;
                self.sacked_bytes -= s.bytes;
            }
            _ => {
                self.limbo_count -= 1;
                self.limbo_bytes -= s.bytes;
            }
        }
        s.flags &= !(OUTSTANDING | SACKED | LIMBO | RETRANSMIT);
    }
}

impl SeqStore for PktStore {
    // simlint: hot-root
    fn insert(&mut self, seq: u64, pkt: SentPkt) {
        debug_assert!(seq >= self.base, "insert below the cumulative point");
        self.grow_for(seq);
        let i = (seq - self.origin) as usize;
        let s = &mut self.slots[i];
        debug_assert_eq!(
            s.flags & (OUTSTANDING | SACKED | LIMBO),
            0,
            "insert over a live state"
        );
        s.sent_at = pkt.sent_at;
        s.delivered_at_send = pkt.delivered_at_send;
        s.bytes = pkt.bytes;
        let retx = if pkt.retransmit { RETRANSMIT } else { 0 };
        s.flags = (s.flags & RETX_DONE) | OUTSTANDING | retx;
        self.outstanding_count += 1;
        self.outstanding_bytes += pkt.bytes;
    }

    fn get(&self, seq: u64) -> Option<SentPkt> {
        let s = self.slot(seq)?;
        if s.flags & OUTSTANDING == 0 {
            return None;
        }
        Some(SentPkt {
            sent_at: s.sent_at,
            delivered_at_send: s.delivered_at_send,
            bytes: s.bytes,
            retransmit: s.flags & RETRANSMIT != 0,
        })
    }

    // simlint: hot-root
    fn remove(&mut self, seq: u64) -> Option<SentPkt> {
        let pkt = self.get(seq)?;
        self.clear_state(seq);
        Some(pkt)
    }

    fn is_outstanding_empty(&self) -> bool {
        self.outstanding_count == 0
    }

    fn outstanding_bytes(&self) -> u64 {
        self.outstanding_bytes
    }

    fn unresolved_bytes(&self) -> u64 {
        self.sacked_bytes + self.limbo_bytes
    }

    // simlint: hot-root
    fn sack_range(&mut self, lo: u64, hi: u64) {
        let lo = lo.max(self.base);
        if lo > hi || lo >= self.top() {
            return;
        }
        let end = hi.min(self.top() - 1);
        for seq in lo..=end {
            let i = (seq - self.origin) as usize;
            if self.slots[i].flags & OUTSTANDING != 0 {
                let bytes = self.slots[i].bytes;
                self.slots[i].flags =
                    (self.slots[i].flags & !(OUTSTANDING | RETRANSMIT)) | SACKED;
                self.outstanding_count -= 1;
                self.outstanding_bytes -= bytes;
                self.sacked_count += 1;
                self.sacked_bytes += bytes;
                self.sacked_max = Some(match self.sacked_max {
                    Some(m) => m.max(seq),
                    None => seq,
                });
            }
        }
    }

    fn max_sacked(&self) -> Option<u64> {
        self.sacked_max
    }

    // simlint: hot-root
    fn advance_cum(&mut self, new_cum: u64) {
        if new_cum < self.base {
            return;
        }
        let end = new_cum.min(self.top().saturating_sub(1));
        for seq in self.base..=end {
            self.clear_state(seq);
        }
        self.base = new_cum + 1;
        if self.sacked_count == 0 {
            self.sacked_max = None;
        }
        debug_assert!(
            self.sacked_max.is_none_or(|m| m > new_cum),
            "pruned the sacked maximum but others remain"
        );
    }

    fn clear_retx_done(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
    }

    // simlint: hot-root
    fn collect_holes(&self, limit: u64, out: &mut Vec<(u64, Time, u64)>) {
        if self.base >= self.top() {
            return;
        }
        let end = limit.min(self.top() - 1);
        for seq in self.base..=end {
            let s = &self.slots[(seq - self.origin) as usize];
            if s.flags & OUTSTANDING != 0
                && s.flags & RETRANSMIT == 0
                && !self.retx_done(s)
            {
                out.push((seq, s.sent_at, s.bytes));
            }
        }
    }

    fn mark_hole_retx(&mut self, seq: u64) {
        debug_assert!(
            self.slot(seq).is_some_and(|s| s.flags & OUTSTANDING != 0),
            "hole is not outstanding"
        );
        self.clear_state(seq);
        let epoch = self.epoch;
        let i = (seq - self.origin) as usize;
        let s = &mut self.slots[i];
        s.flags |= RETX_DONE;
        s.retx_epoch = epoch;
    }

    // simlint: hot-root
    fn collect_below(&self, seq: u64, out: &mut Vec<(u64, Time, u64)>) {
        let end = seq.min(self.top());
        for q in self.base..end {
            let s = &self.slots[(q - self.origin) as usize];
            if s.flags & OUTSTANDING != 0 {
                out.push((q, s.sent_at, s.bytes));
            }
        }
    }

    fn rto_reset(&mut self, out: &mut Vec<u64>) {
        for seq in self.base..self.top() {
            let i = (seq - self.origin) as usize;
            let s = &mut self.slots[i];
            if s.flags & OUTSTANDING != 0 {
                out.push(seq);
                s.flags &= !(OUTSTANDING | RETRANSMIT);
            } else if s.flags & SACKED != 0 {
                let bytes = s.bytes;
                s.flags = (s.flags & !SACKED) | LIMBO;
                self.sacked_count -= 1;
                self.sacked_bytes -= bytes;
                self.limbo_count += 1;
                self.limbo_bytes += bytes;
            }
        }
        self.outstanding_bytes = 0;
        self.outstanding_count = 0;
        self.sacked_max = None;
        debug_assert_eq!(self.sacked_count, 0);
        self.epoch = self.epoch.wrapping_add(1);
    }
}

// --------------------------------------------------------- reference ----

/// The original B-tree containers, verbatim, behind [`SeqStore`]: the
/// executable specification the arena is checked against. Kept ordinary
/// (`BTreeMap::range` walks, `split_off` prunes) on purpose — its value
/// is being obviously correct, not fast.
#[derive(Debug, Default)]
pub struct RefStore {
    outstanding: BTreeMap<u64, SentPkt>,
    /// Sequence → wire bytes, for exact unresolved accounting.
    sacked: BTreeMap<u64, u64>,
    limbo: BTreeMap<u64, u64>,
    retx_done: BTreeSet<u64>,
    outstanding_bytes: u64,
}

impl SeqStore for RefStore {
    fn insert(&mut self, seq: u64, pkt: SentPkt) {
        self.outstanding_bytes += pkt.bytes;
        let prev = self.outstanding.insert(seq, pkt);
        debug_assert!(prev.is_none(), "insert over a live outstanding entry");
    }

    fn get(&self, seq: u64) -> Option<SentPkt> {
        self.outstanding.get(&seq).copied()
    }

    fn remove(&mut self, seq: u64) -> Option<SentPkt> {
        let pkt = self.outstanding.remove(&seq)?;
        self.outstanding_bytes -= pkt.bytes;
        Some(pkt)
    }

    fn is_outstanding_empty(&self) -> bool {
        self.outstanding.is_empty()
    }

    fn outstanding_bytes(&self) -> u64 {
        self.outstanding_bytes
    }

    fn unresolved_bytes(&self) -> u64 {
        self.sacked.values().sum::<u64>() + self.limbo.values().sum::<u64>()
    }

    fn sack_range(&mut self, lo: u64, hi: u64) {
        while let Some((&seq, pkt)) = self.outstanding.range(lo..=hi).next() {
            let bytes = pkt.bytes;
            self.outstanding.remove(&seq);
            self.outstanding_bytes -= bytes;
            self.sacked.insert(seq, bytes);
        }
    }

    fn max_sacked(&self) -> Option<u64> {
        self.sacked.keys().next_back().copied()
    }

    fn advance_cum(&mut self, new_cum: u64) {
        let first = match self.outstanding.keys().next() {
            Some(&f) => f,
            None => new_cum + 1,
        };
        for seq in first..=new_cum {
            if let Some(pkt) = self.outstanding.remove(&seq) {
                self.outstanding_bytes -= pkt.bytes;
            }
        }
        self.sacked = self.sacked.split_off(&(new_cum + 1));
        self.limbo = self.limbo.split_off(&(new_cum + 1));
    }

    fn clear_retx_done(&mut self) {
        self.retx_done.clear();
    }

    fn collect_holes(&self, limit: u64, out: &mut Vec<(u64, Time, u64)>) {
        out.extend(
            self.outstanding
                .range(..=limit)
                .filter(|(s, p)| !self.retx_done.contains(s) && !p.retransmit)
                .map(|(&s, p)| (s, p.sent_at, p.bytes)),
        );
    }

    fn mark_hole_retx(&mut self, seq: u64) {
        let pkt = self.outstanding.remove(&seq).expect("hole is outstanding");
        self.outstanding_bytes -= pkt.bytes;
        self.retx_done.insert(seq);
    }

    fn collect_below(&self, seq: u64, out: &mut Vec<(u64, Time, u64)>) {
        out.extend(
            self.outstanding
                .range(..seq)
                .map(|(&s, p)| (s, p.sent_at, p.bytes)),
        );
    }

    fn rto_reset(&mut self, out: &mut Vec<u64>) {
        out.extend(self.outstanding.keys().copied());
        self.outstanding.clear();
        self.outstanding_bytes = 0;
        self.limbo.append(&mut self.sacked);
        self.retx_done.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(at: u64, bytes: u64, retransmit: bool) -> SentPkt {
        SentPkt {
            sent_at: Time(at),
            delivered_at_send: 0,
            bytes,
            retransmit,
        }
    }

    fn assert_same(a: &PktStore, r: &RefStore, step: &str) {
        assert_eq!(a.is_outstanding_empty(), r.is_outstanding_empty(), "{step}: empties");
        assert_eq!(a.outstanding_bytes(), r.outstanding_bytes(), "{step}: outstanding bytes");
        assert_eq!(a.unresolved_bytes(), r.unresolved_bytes(), "{step}: unresolved bytes");
        assert_eq!(a.max_sacked(), r.max_sacked(), "{step}: max sacked");
        for seq in 0..64 {
            assert_eq!(a.get(seq), r.get(seq), "{step}: get({seq})");
        }
        let mut ha = Vec::new();
        let mut hr = Vec::new();
        a.collect_holes(63, &mut ha);
        r.collect_holes(63, &mut hr);
        assert_eq!(ha, hr, "{step}: holes");
        let mut ba = Vec::new();
        let mut br = Vec::new();
        a.collect_below(64, &mut ba);
        r.collect_below(64, &mut br);
        assert_eq!(ba, br, "{step}: below");
    }

    #[test]
    fn lockstep_matches_reference() {
        let mut a = PktStore::default();
        let mut r = RefStore::default();
        // A loss-heavy episode: send 0..10, SACK 4..=6, declare holes,
        // cum-advance, retransmit, RTO, recover.
        for seq in 0..10 {
            let p = pkt(100 + seq, 1500, false);
            a.insert(seq, p);
            r.insert(seq, p);
            assert_same(&a, &r, "insert");
        }
        a.sack_range(4, 6);
        r.sack_range(4, 6);
        assert_same(&a, &r, "sack 4..=6");
        // Holes below the SACK ceiling get declared and retransmitted.
        let mut holes = Vec::new();
        a.collect_holes(6, &mut holes);
        assert_eq!(holes.iter().map(|h| h.0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        for &(s, _, _) in &holes {
            a.mark_hole_retx(s);
            r.mark_hole_retx(s);
        }
        assert_same(&a, &r, "holes declared");
        // Retransmit copies re-enter; they are not holes.
        for seq in [0u64, 1, 2, 3] {
            let p = pkt(200 + seq, 1500, true);
            a.insert(seq, p);
            r.insert(seq, p);
        }
        assert_same(&a, &r, "retransmits in flight");
        // Cumulative ACK covers 0..=6: prunes outstanding retx copies and
        // the whole sacked run.
        a.advance_cum(6);
        r.advance_cum(6);
        assert_same(&a, &r, "cum 6");
        // New episode after clearing retx-done: old marks must not leak.
        a.clear_retx_done();
        r.clear_retx_done();
        a.sack_range(9, 9);
        r.sack_range(9, 9);
        let mut ha = Vec::new();
        a.collect_holes(9, &mut ha);
        assert_eq!(ha.iter().map(|h| h.0).collect::<Vec<_>>(), vec![7, 8]);
        assert_same(&a, &r, "new episode");
        // RTO: outstanding drains ascending, sacked orphans into limbo.
        let mut da = Vec::new();
        let mut dr = Vec::new();
        a.rto_reset(&mut da);
        r.rto_reset(&mut dr);
        assert_eq!(da, dr);
        assert_eq!(da, vec![7, 8]);
        assert_same(&a, &r, "after rto");
        assert_eq!(a.unresolved_bytes(), 1500, "seq 9 waits in limbo");
        // The cumulative ACK finally passes the limbo packet.
        a.advance_cum(9);
        r.advance_cum(9);
        assert_same(&a, &r, "cum 9");
        assert_eq!(a.unresolved_bytes(), 0);
    }

    #[test]
    fn per_packet_bytes_are_exact() {
        // A final segment shorter than one MSS must be accounted at its
        // true length, not rounded to the MSS.
        let mut a = PktStore::default();
        a.insert(0, pkt(1, 1500, false));
        a.insert(1, pkt(2, 700, false));
        assert_eq!(a.outstanding_bytes(), 2200);
        a.sack_range(1, 1);
        assert_eq!(a.outstanding_bytes(), 1500);
        assert_eq!(a.unresolved_bytes(), 700);
        a.advance_cum(1);
        assert_eq!(a.outstanding_bytes(), 0);
        assert_eq!(a.unresolved_bytes(), 0);
    }

    #[test]
    fn compaction_preserves_live_state() {
        let mut a = PktStore::default();
        let mut r = RefStore::default();
        // Long sliding window: cum advances chase the sender, forcing
        // several compactions; state above the cum point must survive.
        let mut next = 0u64;
        for round in 0..200u64 {
            for _ in 0..8 {
                let p = pkt(1000 + next, 1500, false);
                a.insert(next, p);
                r.insert(next, p);
                next += 1;
            }
            let cum = round * 8 + 3;
            a.sack_range(cum + 2, cum + 3);
            r.sack_range(cum + 2, cum + 3);
            a.advance_cum(cum);
            r.advance_cum(cum);
            assert_same(&a, &r, "sliding window");
        }
        // The arena stayed bounded by the live window, not total seqs.
        assert!(a.slots.len() < 128, "arena grew unbounded: {}", a.slots.len());
    }

    #[test]
    fn get_out_of_range_is_none() {
        let mut a = PktStore::default();
        a.insert(0, pkt(1, 1500, false));
        a.advance_cum(0);
        assert_eq!(a.get(0), None, "pruned seq");
        assert_eq!(a.get(99), None, "never-sent seq");
    }
}

//! The sending endpoint: window + pacing transmission, duplicate-ACK fast
//! retransmit, NewReno-style recovery, and retransmission timeouts.
//!
//! The sender owns the CCA (any [`cca::CongestionControl`]) and feeds it
//! [`cca::AckEvent`]s with exact RTT samples and BBR-style delivery-rate
//! samples, and [`cca::LossEvent`]s when it detects loss. The CCA never sees
//! raw packets — exactly the paper's model of a CCA as a function of its
//! observed delay history (§4.3).

use crate::config::Transport;
use crate::metrics::FlowMetrics;
use crate::packet::{Ack, FlowId, Packet};
use crate::pktstore::{PktStore, SentPkt, SeqStore};
use cca::{AckEvent, BoxCca, LossEvent, LossKind};
use simcore::filter::RttEstimator;
use simcore::units::{bytes_as_f64, count_as_u64, Dur, Rate, Time};
use std::collections::VecDeque;

/// Result of asking the sender for its next transmission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Emit {
    /// Transmit this packet now.
    Pkt(Packet),
    /// Nothing sendable until this time (pacing or app-limit gate).
    WaitUntil(Time),
    /// Window-blocked: an ACK (or timeout) must arrive first.
    Blocked,
}

/// A snapshot of one flow's byte accounting, taken after processing an
/// acknowledgement. The trace auditor checks the exact identity
/// `sent + spurious_rtx = delivered + in_flight + lost + unresolved`:
/// every transmitted byte is delivered, outstanding, declared lost, or
/// held by the receiver above the cumulative point (`unresolved`), and
/// the only slack is loss declarations the cumulative ACK later revoked
/// (`spurious_rtx`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Accounting {
    /// Lifetime bytes transmitted, including retransmissions.
    pub sent: u64,
    /// Lifetime bytes cumulatively acknowledged.
    pub delivered: u64,
    /// Bytes currently outstanding.
    pub in_flight: u64,
    /// Lifetime bytes declared lost.
    pub lost: u64,
    /// Bytes SACKed or RTO-orphaned above the cumulative point.
    pub unresolved: u64,
    /// Bytes declared lost whose original copy was cumulatively
    /// acknowledged before the retransmission left.
    pub spurious_rtx: u64,
}

/// Sending endpoint of one flow.
///
/// Generic over the per-sequence packet store: [`PktStore`] (the flat
/// arena, the default) or [`RefStore`](crate::pktstore::RefStore) (the
/// original B-tree containers, kept as the equivalence oracle).
pub struct Sender<S: SeqStore = PktStore> {
    flow: FlowId,
    cca: BoxCca,
    mss: u64,
    transport: Transport,
    app_limit: Option<Rate>,
    /// Finite flows: packets to send before the flow is done
    /// (`ceil(size / mss)`). `None` means bulk (runs to the end).
    budget_pkts: Option<u64>,
    /// When the flow finished delivering its byte budget.
    completed: Option<Time>,
    /// Completion not yet reported to the simulator (take-once).
    completion_pending: bool,
    /// Next never-sent sequence number.
    next_seq: u64,
    /// Highest cumulative ACK received.
    cum_acked: Option<u64>,
    /// Per-sequence packet state: outstanding / sacked / limbo /
    /// retx-done, with exact per-packet byte accounting.
    store: S,
    /// Sequences queued for retransmission (sent before new data).
    retx_queue: VecDeque<u64>,
    /// Reusable scratch for hole collection (`detect_sack_losses`,
    /// `process_sack`) — keeps the per-ACK path allocation-free.
    hole_buf: Vec<(u64, Time, u64)>,
    /// Reusable scratch for RTO drains.
    rto_buf: Vec<u64>,
    /// Bytes declared lost whose original transmission was cumulatively
    /// acknowledged before the retransmission left (spurious go-back-N
    /// declarations; the sim-level test notes this over-count).
    spurious_rtx: u64,
    /// Total bytes cumulatively acknowledged.
    delivered: u64,
    dup_acks: u32,
    /// NewReno recovery: highest sequence outstanding when loss was
    /// detected; recovery ends when `cum_acked` passes it.
    recover: Option<u64>,
    next_send_time: Time,
    rto_deadline: Option<Time>,
    rto_backoff: u32,
    rtt_est: RttEstimator,
    start: Time,
    /// Recorded per-flow statistics.
    pub metrics: FlowMetrics,
    sample_every: Dur,
    last_sample: Time,
}

impl<S: SeqStore> Sender<S> {
    /// A sender for `flow` driving `cca`, starting at `start`.
    pub fn new(
        flow: FlowId,
        cca: BoxCca,
        mss: u64,
        app_limit: Option<Rate>,
        start: Time,
        sample_every: Dur,
    ) -> Self {
        Sender {
            flow,
            cca,
            mss,
            transport: Transport::Reliable,
            app_limit,
            budget_pkts: None,
            completed: None,
            completion_pending: false,
            next_seq: 0,
            cum_acked: None,
            store: S::default(),
            retx_queue: VecDeque::new(),
            hole_buf: Vec::new(),
            rto_buf: Vec::new(),
            spurious_rtx: 0,
            delivered: 0,
            dup_acks: 0,
            recover: None,
            next_send_time: start,
            rto_deadline: None,
            rto_backoff: 0,
            rtt_est: RttEstimator::new(),
            start,
            metrics: FlowMetrics::new(start),
            sample_every,
            last_sample: Time::ZERO,
        }
    }

    /// Bytes currently in flight: the sum of the wire lengths of every
    /// outstanding packet (not `count * mss`, which over-counts a final
    /// segment shorter than one MSS).
    pub fn in_flight(&self) -> u64 {
        self.store.outstanding_bytes()
    }

    /// Total bytes cumulatively acknowledged.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// The CCA's current congestion window (bytes).
    pub fn cwnd(&self) -> u64 {
        self.cca.cwnd()
    }

    /// Immutable access to the CCA (for state snapshots / inspection).
    pub fn cca(&self) -> &dyn cca::CongestionControl {
        self.cca.as_ref()
    }

    /// Replace the CCA (warm starts install a converged snapshot).
    pub fn set_cca(&mut self, cca: BoxCca) {
        self.cca = cca;
    }

    /// Clone the CCA's current state.
    // simlint: cold: end-of-run state capture (and warm-start setup), never per event
    pub fn cca_snapshot(&self) -> BoxCca {
        self.cca.clone_box()
    }

    /// Switch the reliability model (set once, before the run).
    pub fn set_transport(&mut self, t: Transport) {
        self.transport = t;
    }

    /// Give the flow a finite byte budget (set once, before the run).
    /// `None` keeps the default bulk behaviour.
    pub fn set_size(&mut self, size: Option<u64>) {
        self.budget_pkts = size.map(|s| s.max(1).div_ceil(self.mss));
    }

    /// When the flow delivered its full byte budget (`None` while active
    /// or for bulk flows).
    pub fn completed(&self) -> Option<Time> {
        self.completed
    }

    /// Take the not-yet-reported completion time, if any. Returns
    /// `Some` exactly once per flow, so the simulator emits exactly one
    /// retirement event.
    pub fn take_completion(&mut self) -> Option<Time> {
        if self.completion_pending {
            self.completion_pending = false;
            self.completed
        } else {
            None
        }
    }

    /// Check whether a finite flow has just delivered its whole budget;
    /// if so, record completion and disarm the retransmission timer.
    fn check_complete(&mut self, now: Time) {
        let Some(budget) = self.budget_pkts else {
            return;
        };
        if self.completed.is_some() {
            return;
        }
        let done = match self.transport {
            // Reliable delivery: the cumulative ACK must cover the budget.
            Transport::Reliable => self.cum_acked.is_some_and(|c| c + 1 >= budget),
            // Datagrams are never retransmitted: the flow is done when
            // everything has been sent and every packet's fate is known.
            Transport::Datagram => {
                self.next_seq >= budget
                    && self.store.is_outstanding_empty()
                    && self.retx_queue.is_empty()
            }
        };
        if done {
            self.completed = Some(now);
            self.completion_pending = true;
            self.metrics.completed = Some(now);
            self.rto_deadline = None;
        }
    }

    /// Whether the sender is in NewReno recovery.
    pub fn in_recovery(&self) -> bool {
        self.recover.is_some()
    }

    /// Current byte-accounting snapshot (see [`Accounting`]).
    pub fn accounting(&self) -> Accounting {
        Accounting {
            sent: self.metrics.sent_bytes,
            delivered: self.delivered,
            in_flight: self.in_flight(),
            lost: self.metrics.lost_bytes,
            unresolved: self.store.unresolved_bytes(),
            spurious_rtx: self.spurious_rtx,
        }
    }

    /// Current RTO deadline the simulator should have armed.
    pub fn rto_deadline(&self) -> Option<Time> {
        self.rto_deadline
    }

    /// The flow's start time.
    pub fn start(&self) -> Time {
        self.start
    }

    fn pacing_gap(&self) -> Dur {
        let mut gap = match self.cca.pacing_rate() {
            Some(r) => r.tx_time(self.mss),
            None => Dur::ZERO,
        };
        if let Some(app) = self.app_limit {
            gap = gap.max(app.tx_time(self.mss));
        }
        gap
    }

    /// Ask for the next transmission at `now`.
    pub fn try_emit(&mut self, now: Time) -> Emit {
        if now < self.start {
            return Emit::WaitUntil(self.start);
        }
        if now < self.next_send_time {
            return Emit::WaitUntil(self.next_send_time);
        }
        // Retransmissions bypass the window check: the lost packet's bytes
        // were already removed from `outstanding`.
        let (seq, is_retx) = match self.retx_queue.front() {
            Some(&seq) => (seq, true),
            None => {
                // Finite flows stop producing fresh data once the budget is
                // fully sent (retransmissions above still drain).
                if self.budget_pkts.is_some_and(|b| self.next_seq >= b) {
                    return Emit::Blocked;
                }
                if self.in_flight() + self.mss > self.cca.cwnd() {
                    return Emit::Blocked;
                }
                (self.next_seq, false)
            }
        };
        if is_retx {
            self.retx_queue.pop_front();
        } else {
            self.next_seq += 1;
        }
        let pkt = Packet {
            flow: self.flow,
            seq,
            bytes: self.mss,
            sent_at: now,
            delivered_at_send: self.delivered,
            app_limited: self.app_limit.is_some(),
            retransmit: is_retx,
            ecn: false,
        };
        self.store.insert(
            seq,
            SentPkt {
                sent_at: now,
                delivered_at_send: self.delivered,
                bytes: self.mss,
                retransmit: is_retx,
            },
        );
        self.next_send_time = now + self.pacing_gap();
        // Start the retransmission timer only if it isn't already running:
        // re-arming on every send would push the deadline forward forever
        // while new data keeps flowing past a stalled hole.
        if self.rto_deadline.is_none() {
            self.arm_rto(now);
        }
        self.cca.on_send(now, self.mss, self.in_flight());
        self.metrics.sent_bytes += self.mss;
        if is_retx {
            self.metrics.retransmitted_bytes += self.mss;
        }
        Emit::Pkt(pkt)
    }

    fn arm_rto(&mut self, now: Time) {
        let backoff = 1u64 << self.rto_backoff.min(12);
        self.rto_deadline = Some(now + Dur(self.rtt_est.rto().0.saturating_mul(backoff)));
    }

    /// Process an arriving ACK. Returns `true` if it made forward progress.
    pub fn process_ack(&mut self, now: Time, ack: &Ack) -> bool {
        if self.transport == Transport::Datagram {
            return self.process_sack(now, ack);
        }
        let progress = match (ack.cum_seq, self.cum_acked) {
            (Some(new), Some(old)) => new > old,
            (Some(_), None) => true,
            (None, _) => false,
        };

        // Merge SACK blocks: those packets reached the receiver and are no
        // longer in flight (the delivery-rate echo lookup happens first).
        let echo = self.store.get(ack.echo_seq);
        for block in ack.sack_blocks.iter().flatten() {
            let (lo, hi) = *block;
            self.store.sack_range(lo, hi);
        }

        if !progress {
            // Duplicate ACK handling: only count ACKs that signal a hole.
            if ack.ooo_count > 0 && !self.store.is_outstanding_empty() {
                self.dup_acks += 1;
            }
            self.detect_sack_losses(now);
            return false;
        }

        let new_cum = ack.cum_seq.expect("progress implies cum");
        let old_next = self.cum_acked.map(|c| c + 1).unwrap_or(0);
        let newly_pkts = new_cum + 1 - old_next;
        let newly_bytes = newly_pkts * self.mss;
        self.cum_acked = Some(new_cum);
        self.delivered += newly_bytes;
        self.dup_acks = 0;
        self.rto_backoff = 0;

        // Drop every tracked state at or below the new cumulative point
        // (outstanding, sacked, and limbo alike). Pending retransmissions
        // the cumulative ACK overtakes were spurious loss declarations
        // (the "lost" original actually arrived); count them so byte
        // accounting stays an exact identity.
        self.store.advance_cum(new_cum);
        let before = self.retx_queue.len();
        self.retx_queue.retain(|&s| s > new_cum);
        self.spurious_rtx += count_as_u64(before - self.retx_queue.len()) * self.mss;

        // Recovery exits when the loss episode's window is fully acked.
        if let Some(recover) = self.recover {
            if new_cum >= recover {
                self.recover = None;
                self.store.clear_retx_done();
            }
        }
        self.detect_sack_losses(now);

        // RTT sample (Karn's rule: never from a retransmitted packet).
        let mut rtt = None;
        if !ack.echo_retransmit {
            if let Some(e) = echo {
                if !e.retransmit {
                    let sample = now.since(e.sent_at);
                    self.rtt_est.update(sample);
                    rtt = Some(sample);
                }
            }
        }

        // Delivery rate per the BBR draft: delivered delta over elapsed.
        let delivery_rate = echo.and_then(|e| {
            let elapsed = now.checked_since(e.sent_at)?;
            if elapsed == Dur::ZERO {
                return None;
            }
            Some(Rate::from_transfer(
                self.delivered - e.delivered_at_send,
                elapsed,
            ))
        });

        if let Some(rtt) = rtt {
            self.metrics.rtt.push(now, rtt.as_secs_f64());
        }
        self.metrics.delivered.push(now, bytes_as_f64(self.delivered));
        if now.checked_since(self.last_sample).is_none_or(|d| d >= self.sample_every) {
            self.last_sample = now;
            self.metrics.cwnd.push(now, bytes_as_f64(self.cca.cwnd()));
            if let Some(r) = self.cca.pacing_rate() {
                self.metrics.pacing.push(now, r.bytes_per_sec());
            }
        }

        let ev = AckEvent {
            now,
            rtt: rtt.unwrap_or_else(|| {
                self.rtt_est.srtt().unwrap_or(Dur::from_millis(100))
            }),
            newly_acked: newly_bytes,
            in_flight: self.in_flight(),
            delivered: self.delivered,
            delivered_at_send: echo.map(|e| e.delivered_at_send).unwrap_or(0),
            delivery_rate,
            app_limited: self.app_limit.is_some(),
            ecn: ack.ecn_echo,
        };
        self.cca.on_ack(&ev);

        if self.store.is_outstanding_empty() && self.retx_queue.is_empty() {
            self.rto_deadline = None;
        } else {
            self.arm_rto(now);
        }
        self.check_complete(now);
        true
    }

    /// Datagram transport: one ACK per packet; anything sent before an
    /// acknowledged packet and still outstanding is lost (the path never
    /// reorders a flow), and nothing is ever retransmitted.
    fn process_sack(&mut self, now: Time, ack: &Ack) -> bool {
        let Some(seq) = ack.sack_seq else {
            return false;
        };
        let Some(pkt) = self.store.remove(seq) else {
            return false; // duplicate
        };
        self.delivered += pkt.bytes;
        self.rto_backoff = 0;

        // Everything older than the acked packet is lost (seq order ==
        // send order: datagram flows never retransmit). Report each loss
        // with its exact send time so PCC's monitor intervals attribute it
        // to the right probe. The snapshot decouples the scan from the
        // interleaved removals: the CCA observes in-flight shrinking one
        // packet at a time, exactly as before.
        let mut lost = std::mem::take(&mut self.hole_buf);
        self.store.collect_below(seq, &mut lost);
        for &(s, sent_at, bytes) in &lost {
            self.store.remove(s);
            self.metrics.lost_bytes += bytes;
            self.cca.on_loss(&LossEvent {
                now,
                lost_bytes: bytes,
                in_flight: self.in_flight(),
                kind: LossKind::FastRetransmit,
                sent_at: Some(sent_at),
            });
        }
        lost.clear();
        self.hole_buf = lost;
        // Everything at or below `seq` is now resolved (delivered or
        // lost), and datagram flows never retransmit — advance the
        // store's floor so its scans and compaction stay bounded by the
        // live window. (For the reference store this is a no-op: its
        // containers are already empty below `seq`.)
        self.store.advance_cum(seq);

        let rtt = now.since(pkt.sent_at);
        self.rtt_est.update(rtt);
        self.metrics.rtt.push(now, rtt.as_secs_f64());
        self.metrics.delivered.push(now, bytes_as_f64(self.delivered));
        if now
            .checked_since(self.last_sample)
            .is_none_or(|d| d >= self.sample_every)
        {
            self.last_sample = now;
            self.metrics.cwnd.push(now, bytes_as_f64(self.cca.cwnd()));
            if let Some(r) = self.cca.pacing_rate() {
                self.metrics.pacing.push(now, r.bytes_per_sec());
            }
        }
        let delivery_rate = {
            let elapsed = rtt;
            if elapsed == Dur::ZERO {
                None
            } else {
                Some(Rate::from_transfer(
                    self.delivered - pkt.delivered_at_send,
                    elapsed,
                ))
            }
        };
        self.cca.on_ack(&AckEvent {
            now,
            rtt,
            newly_acked: pkt.bytes,
            in_flight: self.in_flight(),
            delivered: self.delivered,
            delivered_at_send: pkt.delivered_at_send,
            delivery_rate,
            app_limited: self.app_limit.is_some(),
            ecn: ack.ecn_echo,
        });
        if self.store.is_outstanding_empty() {
            self.rto_deadline = None;
        } else {
            self.arm_rto(now);
        }
        self.check_complete(now);
        true
    }

    /// SACK-based loss detection (simplified RFC 6675): once three
    /// duplicate ACKs have arrived (or recovery is active), every
    /// outstanding sequence below the highest SACKed sequence is a hole;
    /// each hole is retransmitted once per recovery episode.
    fn detect_sack_losses(&mut self, now: Time) {
        if self.dup_acks < 3 && !self.in_recovery() {
            return;
        }
        let Some(high) = self.store.max_sacked() else {
            return;
        };
        // During recovery, only holes from the episode's window count; new
        // losses get their own episode (and window reduction) afterwards.
        let limit = match self.recover {
            Some(r) => high.min(r),
            None => high,
        };
        let mut holes = std::mem::take(&mut self.hole_buf);
        self.store.collect_holes(limit, &mut holes);
        if holes.is_empty() {
            self.hole_buf = holes;
            return;
        }
        let first_sent = holes[0].1;
        let mut lost_bytes = 0;
        for &(s, _, bytes) in &holes {
            lost_bytes += bytes;
            self.store.mark_hole_retx(s);
            self.retx_queue.push_back(s);
        }
        holes.clear();
        self.hole_buf = holes;
        self.metrics.lost_bytes += lost_bytes;
        if !self.in_recovery() {
            self.recover = self.next_seq.checked_sub(1);
            self.metrics.fast_retransmits += 1;
            self.cca.on_loss(&LossEvent {
                now,
                lost_bytes,
                in_flight: self.in_flight(),
                kind: LossKind::FastRetransmit,
                sent_at: Some(first_sent),
            });
        }
        // Allow retransmissions to leave immediately.
        if self.next_send_time > now {
            self.next_send_time = now;
        }
    }

    /// The RTO timer fired for `deadline`. Returns `true` if it was current
    /// (and a timeout was processed).
    pub fn on_rto(&mut self, now: Time, deadline: Time) -> bool {
        if self.rto_deadline != Some(deadline) {
            return false; // stale timer
        }
        if self.store.is_outstanding_empty() && self.retx_queue.is_empty() {
            self.rto_deadline = None;
            return false;
        }
        // Everything in flight is presumed lost; reliable transports
        // go-back-N, datagram transports just move on. `rto_reset` also
        // orphans the SACKed packets into limbo (the receiver still holds
        // them above the cumulative point, so their bytes stay accounted
        // until the cumulative ACK passes them) and ends the recovery
        // episode's retx-done marks.
        let lost_bytes = self.store.outstanding_bytes();
        let mut lost = std::mem::take(&mut self.rto_buf);
        self.store.rto_reset(&mut lost);
        if self.transport == Transport::Reliable {
            for &seq in &lost {
                if !self.retx_queue.contains(&seq) {
                    self.retx_queue.push_back(seq);
                }
            }
        }
        lost.clear();
        self.rto_buf = lost;
        self.metrics.lost_bytes += lost_bytes;
        self.metrics.timeouts += 1;
        self.recover = None;
        self.dup_acks = 0;
        self.rto_backoff += 1;
        self.cca.on_loss(&LossEvent {
            now,
            lost_bytes,
            in_flight: 0,
            kind: LossKind::Timeout,
            sent_at: None,
        });
        self.next_send_time = now;
        self.arm_rto(now);
        // A datagram flow whose last packets the timeout just wrote off may
        // now be finished (nothing outstanding, nothing to retransmit).
        self.check_complete(now);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::ConstCwnd;

    fn fid(i: usize) -> FlowId {
        FlowId::from_index(i)
    }

    fn sender(cwnd_pkts: u64) -> Sender {
        Sender::new(
            fid(0),
            Box::new(ConstCwnd::new(cwnd_pkts * 1500)),
            1500,
            None,
            Time::ZERO,
            Dur::from_millis(10),
        )
    }

    fn ack_for(sender_flow: usize, cum: u64, echo: u64, sent_at: Time) -> Ack {
        Ack {
            flow: fid(sender_flow),
            cum_seq: Some(cum),
            echo_seq: echo,
            echo_sent_at: sent_at,
            echo_retransmit: false,
            acked_count: 1,
            ooo_count: 0,
            ecn_echo: false,
            sack_seq: None,
            sack_blocks: [None; 3],
        }
    }

    fn dup_ack(cum: Option<u64>, blocks: &[(u64, u64)]) -> Ack {
        let mut sack_blocks = [None; 3];
        for (i, &b) in blocks.iter().take(3).enumerate() {
            sack_blocks[i] = Some(b);
        }
        Ack {
            flow: fid(0),
            cum_seq: cum,
            echo_seq: 99,
            echo_sent_at: Time::ZERO,
            echo_retransmit: false,
            acked_count: 1,
            ooo_count: blocks.len() as u64,
            ecn_echo: false,
            sack_seq: None,
            sack_blocks,
        }
    }

    #[test]
    fn emits_up_to_window_then_blocks() {
        let mut s = sender(3);
        let t = Time::from_millis(1);
        for i in 0..3 {
            match s.try_emit(t) {
                Emit::Pkt(p) => assert_eq!(p.seq, i),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(s.try_emit(t), Emit::Blocked);
        assert_eq!(s.in_flight(), 3 * 1500);
    }

    #[test]
    fn ack_opens_window_and_delivers() {
        let mut s = sender(2);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        s.try_emit(t0);
        let t1 = Time::from_millis(51);
        assert!(s.process_ack(t1, &ack_for(0, 0, 0, t0)));
        assert_eq!(s.delivered(), 1500);
        assert_eq!(s.in_flight(), 1500);
        assert!(matches!(s.try_emit(t1), Emit::Pkt(_)));
    }

    #[test]
    fn rtt_sample_recorded() {
        let mut s = sender(2);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        s.process_ack(Time::from_millis(41), &ack_for(0, 0, 0, t0));
        let (_, rtt) = s.metrics.rtt.last().unwrap();
        assert!((rtt - 0.040).abs() < 1e-9);
    }

    #[test]
    fn cumulative_ack_covers_multiple() {
        let mut s = sender(5);
        let t0 = Time::from_millis(1);
        for _ in 0..5 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(50), &ack_for(0, 3, 3, t0));
        assert_eq!(s.delivered(), 4 * 1500);
        assert_eq!(s.in_flight(), 1500);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut s = sender(10);
        let t0 = Time::from_millis(1);
        for _ in 0..5 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        let t = Time::from_millis(45);
        s.process_ack(t, &dup_ack(Some(0), &[(2, 2)]));
        s.process_ack(t, &dup_ack(Some(0), &[(2, 3)]));
        assert!(!s.in_recovery());
        s.process_ack(t, &dup_ack(Some(0), &[(2, 4)]));
        assert!(s.in_recovery());
        assert_eq!(s.metrics.fast_retransmits, 1);
        // The retransmission goes out before new data.
        match s.try_emit(Time::from_millis(46)) {
            Emit::Pkt(p) => {
                assert_eq!(p.seq, 1);
                assert!(p.retransmit);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn dup_acks_without_hole_hint_ignored() {
        let mut s = sender(10);
        let t0 = Time::from_millis(1);
        for _ in 0..5 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        for _ in 0..5 {
            s.process_ack(Time::from_millis(45), &dup_ack(Some(0), &[]));
        }
        assert!(!s.in_recovery());
    }

    #[test]
    fn recovery_exits_at_recover_point() {
        let mut s = sender(10);
        let t0 = Time::from_millis(1);
        for _ in 0..6 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        let t = Time::from_millis(45);
        s.process_ack(t, &dup_ack(Some(0), &[(2, 2)]));
        s.process_ack(t, &dup_ack(Some(0), &[(2, 3)]));
        s.process_ack(t, &dup_ack(Some(0), &[(2, 4)]));
        assert!(s.in_recovery());
        // Full ACK past recover (= seq 5) ends recovery.
        s.process_ack(Time::from_millis(80), &ack_for(0, 5, 5, t0));
        assert!(!s.in_recovery());
    }

    #[test]
    fn sack_declares_all_holes_at_once() {
        // Packets 1 and 3 lost; SACK blocks reveal both holes, and both are
        // queued for retransmission in the same episode with one window cut.
        let mut s = sender(10);
        let t0 = Time::from_millis(1);
        for _ in 0..6 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        let t = Time::from_millis(45);
        s.process_ack(t, &dup_ack(Some(0), &[(2, 2)]));
        s.process_ack(t, &dup_ack(Some(0), &[(4, 4), (2, 2)]));
        s.process_ack(t, &dup_ack(Some(0), &[(4, 5), (2, 2)]));
        assert!(s.in_recovery());
        assert!(s.retx_queue.contains(&1), "retx={:?}", s.retx_queue);
        assert!(s.retx_queue.contains(&3), "retx={:?}", s.retx_queue);
        assert_eq!(s.metrics.fast_retransmits, 1);
        assert_eq!(s.metrics.lost_bytes, 2 * 1500);
    }

    #[test]
    fn rto_fires_and_goes_back_n() {
        let mut s = sender(4);
        let t0 = Time::from_millis(1);
        for _ in 0..4 {
            s.try_emit(t0);
        }
        let deadline = s.rto_deadline().unwrap();
        assert!(s.on_rto(deadline, deadline));
        assert_eq!(s.metrics.timeouts, 1);
        assert_eq!(s.in_flight(), 0);
        // All four packets queued for retransmission.
        for i in 0..4 {
            match s.try_emit(deadline) {
                Emit::Pkt(p) => {
                    assert_eq!(p.seq, i);
                    assert!(p.retransmit);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn stale_rto_ignored() {
        let mut s = sender(4);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        let stale = s.rto_deadline().unwrap();
        // An ACK re-arms the timer; the old deadline is stale.
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        assert!(!s.on_rto(stale, stale));
    }

    #[test]
    fn rto_backoff_doubles() {
        let mut s = sender(4);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        let d1 = s.rto_deadline().unwrap();
        s.on_rto(d1, d1);
        let d2 = s.rto_deadline().unwrap();
        let gap1 = d1.since(t0);
        let gap2 = d2.since(d1);
        assert!(gap2 >= gap1, "gap1={gap1} gap2={gap2}");
    }

    #[test]
    fn karn_rule_skips_retransmit_rtt() {
        let mut s = sender(4);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        let deadline = s.rto_deadline().unwrap();
        s.on_rto(deadline, deadline);
        // Retransmit packet 0.
        let t1 = deadline;
        s.try_emit(t1);
        let n_before = s.metrics.rtt.len();
        let mut a = ack_for(0, 0, 0, t1);
        a.echo_retransmit = true;
        s.process_ack(t1 + Dur::from_millis(40), &a);
        assert_eq!(s.metrics.rtt.len(), n_before);
    }

    #[test]
    fn pacing_gates_transmissions() {
        // A CCA with pacing: use Vivace which paces.
        let mut s: Sender = Sender::new(
            fid(0),
            Box::new(cca::Vivace::default_params()),
            1500,
            None,
            Time::ZERO,
            Dur::from_millis(10),
        );
        let t = Time::from_millis(1);
        match s.try_emit(t) {
            Emit::Pkt(_) => {}
            other => panic!("{other:?}"),
        }
        // Immediately asking again must hit the pacing gate.
        match s.try_emit(t) {
            Emit::WaitUntil(w) => assert!(w > t),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn app_limit_caps_rate() {
        let mut s: Sender = Sender::new(
            fid(0),
            Box::new(ConstCwnd::new(100 * 1500)),
            1500,
            Some(Rate::from_mbps(12.0)), // 1 ms per packet
            Time::ZERO,
            Dur::from_millis(10),
        );
        let t = Time::from_millis(1);
        assert!(matches!(s.try_emit(t), Emit::Pkt(_)));
        match s.try_emit(t) {
            Emit::WaitUntil(w) => assert_eq!(w, Time::from_millis(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn finite_flow_stops_at_budget_and_completes_on_full_ack() {
        let mut s = sender(10);
        s.set_size(Some(3 * 1500)); // exactly 3 packets
        let t0 = Time::from_millis(1);
        for i in 0..3 {
            match s.try_emit(t0) {
                Emit::Pkt(p) => assert_eq!(p.seq, i),
                other => panic!("{other:?}"),
            }
        }
        // Budget exhausted: no fresh data even though the window is open.
        assert_eq!(s.try_emit(t0), Emit::Blocked);
        assert_eq!(s.completed(), None);
        let t1 = Time::from_millis(41);
        s.process_ack(t1, &ack_for(0, 2, 2, t0));
        assert_eq!(s.completed(), Some(t1));
        assert_eq!(s.take_completion(), Some(t1));
        // Take-once: a second take yields nothing.
        assert_eq!(s.take_completion(), None);
        assert_eq!(s.rto_deadline(), None);
        assert_eq!(s.delivered(), 3 * 1500);
    }

    #[test]
    fn budget_rounds_partial_packet_up() {
        let mut s = sender(10);
        s.set_size(Some(1501)); // 1.0007 packets -> 2
        let t0 = Time::from_millis(1);
        assert!(matches!(s.try_emit(t0), Emit::Pkt(_)));
        assert!(matches!(s.try_emit(t0), Emit::Pkt(_)));
        assert_eq!(s.try_emit(t0), Emit::Blocked);
    }

    #[test]
    fn finite_flow_completion_survives_loss_and_retransmit() {
        let mut s = sender(10);
        s.set_size(Some(5 * 1500));
        let t0 = Time::from_millis(1);
        for _ in 0..5 {
            s.try_emit(t0);
        }
        s.process_ack(Time::from_millis(40), &ack_for(0, 0, 0, t0));
        let t = Time::from_millis(45);
        // Packet 1 lost; SACKs reveal the hole.
        s.process_ack(t, &dup_ack(Some(0), &[(2, 2)]));
        s.process_ack(t, &dup_ack(Some(0), &[(2, 3)]));
        s.process_ack(t, &dup_ack(Some(0), &[(2, 4)]));
        assert!(s.in_recovery());
        assert_eq!(s.completed(), None);
        // Retransmit the hole, then the cumulative ACK covers the budget.
        let t2 = Time::from_millis(46);
        match s.try_emit(t2) {
            Emit::Pkt(p) => assert!(p.retransmit),
            other => panic!("{other:?}"),
        }
        let t3 = Time::from_millis(86);
        s.process_ack(t3, &ack_for(0, 4, 4, t0));
        assert_eq!(s.completed(), Some(t3));
    }

    #[test]
    fn datagram_finite_flow_completes_when_every_fate_is_known() {
        let mut s = sender(10);
        s.set_transport(Transport::Datagram);
        s.set_size(Some(2 * 1500));
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        s.try_emit(t0);
        assert_eq!(s.try_emit(t0), Emit::Blocked);
        let mut a = ack_for(0, 0, 0, t0);
        a.cum_seq = None;
        a.sack_seq = Some(0);
        s.process_ack(Time::from_millis(41), &a);
        assert_eq!(s.completed(), None);
        let mut b = ack_for(0, 0, 1, t0);
        b.cum_seq = None;
        b.sack_seq = Some(1);
        let t1 = Time::from_millis(42);
        s.process_ack(t1, &b);
        assert_eq!(s.completed(), Some(t1));
    }

    #[test]
    fn bulk_flow_never_completes() {
        let mut s = sender(2);
        let t0 = Time::from_millis(1);
        s.try_emit(t0);
        s.try_emit(t0);
        s.process_ack(Time::from_millis(41), &ack_for(0, 1, 1, t0));
        assert_eq!(s.completed(), None);
        assert_eq!(s.take_completion(), None);
    }

    #[test]
    fn start_time_respected() {
        let mut s: Sender = Sender::new(
            fid(0),
            Box::new(ConstCwnd::ten_packets()),
            1500,
            None,
            Time::from_secs(1),
            Dur::from_millis(10),
        );
        match s.try_emit(Time::from_millis(10)) {
            Emit::WaitUntil(w) => assert_eq!(w, Time::from_secs(1)),
            other => panic!("{other:?}"),
        }
    }
}

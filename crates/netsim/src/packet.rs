//! Packet and ACK records exchanged between simulator components.

use simcore::units::Time;

pub use simcore::flow::FlowId;

/// A data packet in flight. Sequence numbers count packets (all packets of
/// a flow are MSS-sized), which keeps loss detection simple without
/// modelling byte streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// Packet sequence number (0-based, in packets).
    pub seq: u64,
    /// Payload size in bytes.
    pub bytes: u64,
    /// When the sender transmitted this copy (retransmissions refresh it).
    pub sent_at: Time,
    /// Sender's `delivered` counter at transmission (BBR rate sampling).
    pub delivered_at_send: u64,
    /// True if the flow was application-limited at send time.
    pub app_limited: bool,
    /// True if this is a retransmission (its RTT sample is ambiguous and is
    /// discarded, per Karn's rule).
    pub retransmit: bool,
    /// True once the bottleneck marked this packet with explicit
    /// congestion notification (§6.4).
    pub ecn: bool,
}

/// An acknowledgement travelling back to the sender.
///
/// Cumulative packet-level ACK: `cum_seq` is the highest sequence such that
/// all packets `0..=cum_seq` have arrived (`None` until packet 0 arrives).
#[derive(Clone, Copy, Debug)]
pub struct Ack {
    /// Owning flow.
    pub flow: FlowId,
    /// Cumulative in-order acknowledgement.
    pub cum_seq: Option<u64>,
    /// Sequence of the data packet whose arrival triggered this ACK
    /// (echoed so the sender can take an RTT sample for that packet).
    pub echo_seq: u64,
    /// `sent_at` of the echoed packet.
    pub echo_sent_at: Time,
    /// Whether the echoed packet was a retransmission (Karn: no RTT sample).
    pub echo_retransmit: bool,
    /// Number of data packets this ACK covers (delayed/aggregated ACKs
    /// cover several).
    pub acked_count: u64,
    /// Count of out-of-order packets held at the receiver (a SACK-like
    /// hint; nonzero means there is a hole).
    pub ooo_count: u64,
    /// True if any data this ACK covers carried an ECN congestion mark.
    pub ecn_echo: bool,
    /// Datagram transport only: the individual packet this ACK covers
    /// (datagram receivers acknowledge every packet separately).
    pub sack_seq: Option<u64>,
    /// Up to three SACK blocks: closed `[lo, hi]` ranges of out-of-order
    /// data held at the receiver, newest first (RFC 2018-style).
    pub sack_blocks: [Option<(u64, u64)>; 3],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_is_copy_and_small() {
        // Packets are copied into queues constantly; keep them compact.
        assert!(std::mem::size_of::<Packet>() <= 64);
        assert!(std::mem::size_of::<Ack>() <= 160);
    }

    #[test]
    fn ack_semantics() {
        let a = Ack {
            flow: FlowId::from_index(0),
            cum_seq: None,
            echo_seq: 3,
            echo_sent_at: Time::ZERO,
            echo_retransmit: false,
            acked_count: 1,
            ooo_count: 1,
            ecn_echo: false,
            sack_seq: None,
            sack_blocks: [None; 3],
        };
        // cum None + ooo > 0: packet 0 still missing but later data arrived.
        assert!(a.cum_seq.is_none());
        assert_eq!(a.ooo_count, 1);
    }
}

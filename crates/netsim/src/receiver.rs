//! The receiving endpoint: cumulative ACK generation with configurable
//! delay/aggregation policies (see [`AckPolicy`]).

use crate::config::AckPolicy;
use crate::packet::{Ack, FlowId, Packet};
use simcore::units::{count_as_u64, Time};
use simcore::InlineVec;

/// ACK batch released by one receiver event. Inline capacity covers every
/// reliable-mode path (at most one ACK) and typical delayed datagram
/// flushes; larger datagram bursts spill to the heap.
pub type AckBatch = InlineVec<Ack, 4>;

/// What the receiver wants done after processing an event.
#[derive(Clone, Debug, Default)]
pub struct RxOutput {
    /// ACKs to send immediately (datagram receivers may release several).
    pub acks: AckBatch,
    /// Arm (or re-arm) the flush timer at this time.
    pub arm_flush: Option<Time>,
}

fn one_ack(ack: Ack) -> AckBatch {
    let mut acks = AckBatch::new();
    acks.push(ack);
    acks
}

impl RxOutput {
    /// Convenience for tests: the single immediate ACK, if exactly one.
    pub fn ack(&self) -> Option<Ack> {
        if self.acks.len() == 1 {
            Some(self.acks[0])
        } else {
            None
        }
    }
}

/// Pending (held) acknowledgement state for delayed/aggregated policies.
#[derive(Clone, Copy, Debug)]
struct Held {
    count: u64,
    echo_seq: u64,
    echo_sent_at: Time,
    echo_retransmit: bool,
    ecn: bool,
}

/// Out-of-order sequence numbers above the cumulative point, kept as a
/// sorted list of maximal contiguous inclusive ranges.
///
/// The per-seq `BTreeSet` this replaced made every ACK pay an `O(holes)`
/// rescan to build SACK blocks; with coalesced ranges the blocks are just
/// the top (up to) three entries, read off in `O(1)` per ACK, and inserts
/// are a binary search plus at most one merge. The range list is tiny in
/// practice (a loss episode's worth of holes), so the `Vec` shifts on
/// insert/absorb are cheap.
#[derive(Clone, Debug, Default)]
struct OooRanges {
    /// Sorted, disjoint, non-adjacent (maximal) inclusive ranges.
    ranges: Vec<(u64, u64)>,
    /// Total sequence numbers across all ranges.
    count: u64,
}

impl OooRanges {
    fn len(&self) -> usize {
        self.count as usize
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn contains(&self, seq: u64) -> bool {
        let idx = self.ranges.partition_point(|&(lo, _)| lo <= seq);
        idx > 0 && self.ranges[idx - 1].1 >= seq
    }

    /// Insert a sequence number known to be absent (callers check
    /// `contains` first), merging with adjacent ranges to stay maximal.
    fn insert(&mut self, seq: u64) {
        debug_assert!(!self.contains(seq));
        let idx = self.ranges.partition_point(|&(lo, _)| lo <= seq);
        let merges_prev = idx > 0 && self.ranges[idx - 1].1 + 1 == seq;
        let merges_next = idx < self.ranges.len() && seq + 1 == self.ranges[idx].0;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.ranges[idx - 1].1 = self.ranges[idx].1;
                self.ranges.remove(idx);
            }
            (true, false) => self.ranges[idx - 1].1 = seq,
            (false, true) => self.ranges[idx].0 = seq,
            (false, false) => self.ranges.insert(idx, (seq, seq)),
        }
        self.count += 1;
    }

    /// If the lowest range starts exactly at `next`, absorb it and return
    /// the new cumulative point (one past the range). Mirrors the old
    /// per-seq `while remove(next) { next += 1 }` loop: ranges are maximal,
    /// so the whole contiguous run goes at once.
    fn absorb_from(&mut self, next: u64) -> Option<u64> {
        let &(lo, hi) = self.ranges.first()?;
        if lo != next {
            return None;
        }
        self.ranges.remove(0);
        self.count -= hi - lo + 1;
        Some(hi + 1)
    }

    /// The three highest ranges, highest first — exactly the blocks the old
    /// reverse scan over individual sequence numbers produced.
    fn blocks(&self) -> [Option<(u64, u64)>; 3] {
        let mut blocks: [Option<(u64, u64)>; 3] = [None; 3];
        for (slot, &range) in blocks.iter_mut().zip(self.ranges.iter().rev()) {
            *slot = Some(range);
        }
        blocks
    }
}

/// Receiving endpoint of one flow.
#[derive(Clone, Debug)]
pub struct Receiver {
    flow: FlowId,
    policy: AckPolicy,
    /// Next in-order sequence expected.
    next_expected: u64,
    /// Out-of-order packets held above the cumulative point.
    ooo: OooRanges,
    held: Option<Held>,
    /// Datagram mode: per-packet ACKs awaiting release.
    pending: Vec<Held>,
    /// Whether this receiver acknowledges each packet individually.
    datagram: bool,
    /// Deadline currently armed (stale timer events are ignored).
    flush_deadline: Option<Time>,
    /// Total data packets received (including duplicates).
    pub packets_received: u64,
}

impl Receiver {
    /// A receiver for `flow` with the given ACK policy (reliable mode).
    pub fn new(flow: FlowId, policy: AckPolicy) -> Self {
        Receiver {
            flow,
            policy,
            next_expected: 0,
            ooo: OooRanges::default(),
            held: None,
            pending: Vec::new(),
            datagram: false,
            flush_deadline: None,
            packets_received: 0,
        }
    }

    /// A datagram-mode receiver: every packet gets its own ACK (possibly
    /// held by the delay/aggregation policy), no cumulative semantics.
    pub fn new_datagram(flow: FlowId, policy: AckPolicy) -> Self {
        let mut r = Receiver::new(flow, policy);
        r.datagram = true;
        r
    }

    /// Cumulative ACK value (`None` until packet 0 arrives).
    pub fn cum_seq(&self) -> Option<u64> {
        self.next_expected.checked_sub(1)
    }

    fn make_ack(&self, held: Held) -> Ack {
        Ack {
            flow: self.flow,
            cum_seq: self.cum_seq(),
            echo_seq: held.echo_seq,
            echo_sent_at: held.echo_sent_at,
            echo_retransmit: held.echo_retransmit,
            acked_count: held.count,
            ooo_count: count_as_u64(self.ooo.len()),
            ecn_echo: held.ecn,
            sack_seq: None,
            // The three most recent contiguous out-of-order ranges (RFC
            // 2018 reports the newest blocks first; "recent" = highest),
            // maintained incrementally by [`OooRanges`].
            sack_blocks: self.ooo.blocks(),
        }
    }

    fn make_sack(&self, held: Held) -> Ack {
        Ack {
            flow: self.flow,
            cum_seq: None,
            echo_seq: held.echo_seq,
            echo_sent_at: held.echo_sent_at,
            echo_retransmit: held.echo_retransmit,
            acked_count: 1,
            ooo_count: 0,
            ecn_echo: held.ecn,
            sack_seq: Some(held.echo_seq),
            sack_blocks: [None; 3],
        }
    }

    /// Decide when held datagram ACKs should be released.
    fn datagram_on_data(&mut self, now: Time, pkt: Packet) -> RxOutput {
        self.pending.push(Held {
            count: 1,
            echo_seq: pkt.seq,
            echo_sent_at: pkt.sent_at,
            echo_retransmit: pkt.retransmit,
            ecn: pkt.ecn,
        });
        match self.policy {
            AckPolicy::PerPacket => RxOutput {
                acks: self.drain_pending(),
                arm_flush: None,
            },
            AckPolicy::Delayed { max_pkts, timeout } => {
                if count_as_u64(self.pending.len()) >= max_pkts {
                    self.flush_deadline = None;
                    RxOutput {
                        acks: self.drain_pending(),
                        arm_flush: None,
                    }
                } else if self.flush_deadline.is_none() {
                    let deadline = now + timeout;
                    self.flush_deadline = Some(deadline);
                    RxOutput {
                        acks: AckBatch::new(),
                        arm_flush: Some(deadline),
                    }
                } else {
                    RxOutput::default()
                }
            }
            AckPolicy::Quantized { period } => {
                if self.flush_deadline.is_none() {
                    let p = period.as_nanos().max(1);
                    let next = now.as_nanos().div_ceil(p).max(1) * p;
                    let deadline = Time(next);
                    self.flush_deadline = Some(deadline);
                    RxOutput {
                        acks: AckBatch::new(),
                        arm_flush: Some(deadline),
                    }
                } else {
                    RxOutput::default()
                }
            }
        }
    }

    fn drain_pending(&mut self) -> AckBatch {
        let pending = std::mem::take(&mut self.pending);
        // simlint: allow(hot-path-alloc): collects into AckBatch (InlineVec) — inline storage, no heap at delayed-ack batch sizes
        pending.into_iter().map(|h| self.make_sack(h)).collect()
    }

    /// Process an arriving data packet.
    pub fn on_data(&mut self, now: Time, pkt: Packet) -> RxOutput {
        self.packets_received += 1;
        if self.datagram {
            return self.datagram_on_data(now, pkt);
        }
        let duplicate = pkt.seq < self.next_expected || self.ooo.contains(pkt.seq);
        let in_order = pkt.seq == self.next_expected;
        if in_order {
            self.next_expected += 1;
            // Absorb any contiguous out-of-order run.
            if let Some(next) = self.ooo.absorb_from(self.next_expected) {
                self.next_expected = next;
            }
        } else if !duplicate {
            self.ooo.insert(pkt.seq);
        }

        let held = {
            let h = self.held.get_or_insert(Held {
                count: 0,
                echo_seq: pkt.seq,
                echo_sent_at: pkt.sent_at,
                echo_retransmit: pkt.retransmit,
                ecn: false,
            });
            h.count += 1;
            h.echo_seq = pkt.seq;
            h.echo_sent_at = pkt.sent_at;
            h.echo_retransmit = pkt.retransmit;
            h.ecn |= pkt.ecn;
            *h
        };

        match self.policy {
            AckPolicy::PerPacket => {
                self.held = None;
                RxOutput {
                    acks: one_ack(self.make_ack(held)),
                    arm_flush: None,
                }
            }
            AckPolicy::Delayed { max_pkts, timeout } => {
                // Out-of-order or duplicate data defeats ACK delay (RFC 5681):
                // the sender needs duplicate ACKs promptly.
                let must_ack_now =
                    !self.ooo.is_empty() || duplicate || held.count >= max_pkts;
                if must_ack_now {
                    self.held = None;
                    self.flush_deadline = None;
                    RxOutput {
                        acks: one_ack(self.make_ack(held)),
                        arm_flush: None,
                    }
                } else if self.flush_deadline.is_none() {
                    let deadline = now + timeout;
                    self.flush_deadline = Some(deadline);
                    RxOutput {
                        acks: AckBatch::new(),
                        arm_flush: Some(deadline),
                    }
                } else {
                    RxOutput::default()
                }
            }
            AckPolicy::Quantized { period } => {
                // Release only at the next multiple of `period`, no matter
                // what (this is link-layer aggregation, below the ACK rules).
                if self.flush_deadline.is_none() {
                    let p = period.as_nanos().max(1);
                    let next = now.as_nanos().div_ceil(p).max(1) * p;
                    let deadline = Time(next);
                    self.flush_deadline = Some(deadline);
                    RxOutput {
                        acks: AckBatch::new(),
                        arm_flush: Some(deadline),
                    }
                } else {
                    RxOutput::default()
                }
            }
        }
    }

    /// The flush timer fired (the caller passes the deadline the event was
    /// scheduled for; stale timers are ignored).
    pub fn on_flush(&mut self, deadline: Time) -> AckBatch {
        if self.flush_deadline != Some(deadline) {
            return AckBatch::new(); // superseded
        }
        self.flush_deadline = None;
        if self.datagram {
            return self.drain_pending();
        }
        match self.held.take() {
            Some(held) => one_ack(self.make_ack(held)),
            None => AckBatch::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::units::Dur;

    fn fid(i: usize) -> FlowId {
        FlowId::from_index(i)
    }

    fn pkt(seq: u64, sent_ms: u64) -> Packet {
        Packet {
            flow: fid(0),
            seq,
            bytes: 1500,
            sent_at: Time::from_millis(sent_ms),
            delivered_at_send: 0,
            app_limited: false,
            retransmit: false,
            ecn: false,
        }
    }

    #[test]
    fn per_packet_acks_everything() {
        let mut r = Receiver::new(fid(0), AckPolicy::PerPacket);
        let out = r.on_data(Time::from_millis(1), pkt(0, 0));
        let ack = out.ack().unwrap();
        assert_eq!(ack.cum_seq, Some(0));
        assert_eq!(ack.echo_seq, 0);
        let out = r.on_data(Time::from_millis(2), pkt(1, 1));
        assert_eq!(out.ack().unwrap().cum_seq, Some(1));
    }

    #[test]
    fn out_of_order_hole_tracked() {
        let mut r = Receiver::new(fid(0), AckPolicy::PerPacket);
        r.on_data(Time::from_millis(1), pkt(0, 0));
        // Packet 2 arrives before 1: dup-ack with ooo hint.
        let out = r.on_data(Time::from_millis(2), pkt(2, 1));
        let ack = out.ack().unwrap();
        assert_eq!(ack.cum_seq, Some(0));
        assert_eq!(ack.ooo_count, 1);
        // Packet 1 fills the hole: cum jumps to 2.
        let out = r.on_data(Time::from_millis(3), pkt(1, 1));
        assert_eq!(out.ack().unwrap().cum_seq, Some(2));
        assert_eq!(r.ooo.len(), 0);
    }

    #[test]
    fn duplicate_data_still_acked() {
        let mut r = Receiver::new(fid(0), AckPolicy::PerPacket);
        r.on_data(Time::from_millis(1), pkt(0, 0));
        let out = r.on_data(Time::from_millis(2), pkt(0, 0));
        assert_eq!(out.ack().unwrap().cum_seq, Some(0));
    }

    #[test]
    fn delayed_acks_every_nth() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Delayed {
                max_pkts: 4,
                timeout: Dur::from_millis(40),
            },
        );
        assert!(r.on_data(Time::from_millis(1), pkt(0, 0)).acks.is_empty());
        assert!(r.on_data(Time::from_millis(2), pkt(1, 0)).acks.is_empty());
        assert!(r.on_data(Time::from_millis(3), pkt(2, 0)).acks.is_empty());
        let out = r.on_data(Time::from_millis(4), pkt(3, 0));
        let ack = out.ack().unwrap();
        assert_eq!(ack.cum_seq, Some(3));
        assert_eq!(ack.acked_count, 4);
    }

    #[test]
    fn delayed_ack_timeout_flushes() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Delayed {
                max_pkts: 4,
                timeout: Dur::from_millis(40),
            },
        );
        let out = r.on_data(Time::from_millis(1), pkt(0, 0));
        let deadline = out.arm_flush.unwrap();
        assert_eq!(deadline, Time::from_millis(41));
        let ack = r.on_flush(deadline)[0];
        assert_eq!(ack.cum_seq, Some(0));
        assert_eq!(ack.acked_count, 1);
    }

    #[test]
    fn stale_flush_ignored() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Delayed {
                max_pkts: 2,
                timeout: Dur::from_millis(40),
            },
        );
        let out = r.on_data(Time::from_millis(1), pkt(0, 0));
        let deadline = out.arm_flush.unwrap();
        // Second packet triggers the count-based ACK; the timer is stale.
        assert!(r.on_data(Time::from_millis(2), pkt(1, 0)).acks.len() == 1);
        assert!(r.on_flush(deadline).is_empty());
    }

    #[test]
    fn delayed_ack_defeated_by_ooo() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Delayed {
                max_pkts: 4,
                timeout: Dur::from_millis(40),
            },
        );
        r.on_data(Time::from_millis(1), pkt(0, 0));
        // seq 2 creates a hole → immediate (duplicate-able) ACK.
        let out = r.on_data(Time::from_millis(2), pkt(2, 0));
        assert!(out.acks.len() == 1);
        assert_eq!(out.ack().unwrap().ooo_count, 1);
    }

    #[test]
    fn quantized_releases_on_boundary() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Quantized {
                period: Dur::from_millis(60),
            },
        );
        let out = r.on_data(Time::from_millis(10), pkt(0, 0));
        assert!(out.acks.is_empty());
        let deadline = out.arm_flush.unwrap();
        assert_eq!(deadline, Time::from_millis(60));
        // More data before the boundary joins the same release.
        assert!(r.on_data(Time::from_millis(20), pkt(1, 5)).acks.is_empty());
        let ack = r.on_flush(deadline)[0];
        assert_eq!(ack.cum_seq, Some(1));
        assert_eq!(ack.acked_count, 2);
        // Echo is the latest packet.
        assert_eq!(ack.echo_seq, 1);
    }

    #[test]
    fn quantized_boundary_is_exact_multiple() {
        let mut r = Receiver::new(
            fid(0),
            AckPolicy::Quantized {
                period: Dur::from_millis(60),
            },
        );
        // Arrival exactly on a boundary schedules that boundary.
        let out = r.on_data(Time::from_millis(120), pkt(0, 100));
        assert_eq!(out.arm_flush.unwrap(), Time::from_millis(120));
    }

    #[test]
    fn cum_none_before_first_packet() {
        let r = Receiver::new(fid(0), AckPolicy::PerPacket);
        assert_eq!(r.cum_seq(), None);
    }
}

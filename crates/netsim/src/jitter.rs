//! The non-congestive delay element (§3 of the paper).
//!
//! Sits after the bottleneck queue and propagation delay on each flow's
//! path. It may hold any packet for between 0 and `D` seconds but never
//! reorders packets of the same flow — exactly the model component the
//! paper proves starvation against. The policies:
//!
//! * [`Jitter::None`] — the ideal path.
//! * [`Jitter::Random`] — i.i.d. uniform delay in `[0, max]` (what "noise"
//!   looks like; note the paper's model is *non-deterministic, not random*,
//!   and filtering defeats random jitter — tests confirm CCAs survive it).
//! * [`Jitter::Script`] — delay looked up from a precomputed schedule by
//!   packet send time (used to replay η(t) schedules from the Theorem 1
//!   construction).
//! * [`Jitter::TargetRtt`] — the adversary inside the Theorem 1/2 proofs:
//!   hold each packet until its total RTT equals a target trajectory
//!   `d̄(t_send)`, clamped to the jitter budget. Clamp violations are
//!   counted so experiments can report emulation error.
//! * [`Jitter::ExtraExcept`] — add a constant extra delay to every packet
//!   *except* chosen ones (the §5.1 Copa min-RTT poisoning: every packet
//!   takes `Rm + 1 ms` except one that takes `Rm`).
//! * [`Jitter::TokenBucket`] — a token-bucket filter, one of §2.1's named
//!   non-congestive delay sources: delays bursts without being a
//!   persistent rate bottleneck.

use simcore::rng::Xoshiro256;
use simcore::series::TimeSeries;
use simcore::units::{bytes_as_f64, Dur, Time};

/// Per-flow non-congestive delay policy.
#[derive(Clone, Debug)]
pub enum Jitter {
    /// Ideal path: no added delay.
    None,
    /// Uniform random delay in `[0, max]`, no reordering.
    Random {
        /// Upper bound `D`.
        max: Dur,
        /// Deterministic stream.
        rng: Xoshiro256,
    },
    /// Delay = `schedule(t_send)`, clamped to `[0, max]`.
    Script {
        /// η(t) in seconds, looked up by packet send time (step function).
        schedule: TimeSeries,
        /// Upper bound `D`.
        max: Dur,
    },
    /// Adversarial: release the packet so its RTT equals
    /// `target_rtt(t_send)`, adding at most `max` of delay.
    TargetRtt {
        /// d̄(t) in seconds, looked up by packet send time.
        target_rtt: TimeSeries,
        /// Upper bound `D`.
        max: Dur,
    },
    /// Constant `extra` delay for every packet except those for which
    /// `(packet index) % period == offset` (period 0 ⇒ only packet at
    /// `offset` is exempted once).
    ExtraExcept {
        /// The persistent non-congestive delay.
        extra: Dur,
        /// Every `period`-th packet is exempt (0 = only one packet ever).
        period: u64,
        /// Index of the first exempt packet.
        offset: u64,
    },
    /// A token-bucket filter — one of the paper's named sources of
    /// non-congestive delay (§2.1). Tokens accrue at `rate` up to `bucket`
    /// bytes; a packet needing more tokens than available waits for the
    /// deficit to refill. With `rate` at or above the bottleneck rate the
    /// TBF is not a persistent bottleneck, but it shapes bursts into
    /// delay spikes that look exactly like jitter to an end-to-end CCA.
    TokenBucket {
        /// Token refill rate (bytes/sec semantics via [`simcore::units::Rate`]).
        rate: simcore::units::Rate,
        /// Bucket depth in bytes.
        bucket: u64,
    },
}

impl Jitter {
    /// The policy's displacement bound `D`: the most extra delay any packet
    /// can experience between arriving at the element and being released,
    /// including the no-reorder floor (with in-order arrivals, a floored
    /// release still sits within the *previous* packet's bound). `None`
    /// means the policy has no a-priori bound (the token bucket's delay
    /// depends on the arrival process), so the audit skips the check.
    pub fn bound(&self) -> Option<Dur> {
        match self {
            Jitter::None => Some(Dur::ZERO),
            Jitter::Random { max, .. }
            | Jitter::Script { max, .. }
            | Jitter::TargetRtt { max, .. } => Some(*max),
            Jitter::ExtraExcept { extra, .. } => Some(*extra),
            Jitter::TokenBucket { .. } => None,
        }
    }
}

/// Runtime state of a flow's jitter element.
#[derive(Clone, Debug)]
pub struct JitterElement {
    policy: Jitter,
    /// Release time of the previously released packet (no-reorder floor).
    last_release: Time,
    /// Token-bucket state: available tokens (bytes) and last refill time.
    tbf_tokens: f64,
    tbf_last: Time,
    /// Packets processed.
    count: u64,
    /// Times the requested delay fell outside `[0, max]` and was clamped
    /// (only the adversarial policies can violate; see Theorem 1's
    /// feasibility conditions).
    clamp_violations: u64,
    /// Greatest clamp magnitude seen, seconds.
    worst_clamp: f64,
}

impl JitterElement {
    /// Wrap a policy.
    pub fn new(policy: Jitter) -> Self {
        let tbf_tokens = match &policy {
            Jitter::TokenBucket { bucket, .. } => bytes_as_f64(*bucket),
            _ => 0.0,
        };
        JitterElement {
            policy,
            last_release: Time::ZERO,
            tbf_tokens,
            tbf_last: Time::ZERO,
            count: 0,
            clamp_violations: 0,
            worst_clamp: 0.0,
        }
    }

    /// Decide when a packet of `bytes` arriving at the element `now`
    /// (having been sent at `sent_at`) is released toward the receiver.
    ///
    /// Guarantees release ≥ `now` (no time travel) and release ≥ the
    /// previous packet's release (no reordering).
    pub fn release_time(&mut self, now: Time, sent_at: Time, bytes: u64) -> Time {
        let idx = self.count;
        self.count += 1;
        // Token-bucket state lives outside the policy enum, so handle it
        // before borrowing `self.policy` mutably.
        if let Jitter::TokenBucket { rate, bucket } = &self.policy {
            let (rate, bucket) = (*rate, *bucket);
            // Refill since the last packet (capped at the bucket depth),
            // then let the balance go negative: a negative balance is the
            // deficit the packet must wait out. This handles same-instant
            // bursts without time arithmetic underflow.
            let elapsed = now.since(self.tbf_last).as_secs_f64();
            self.tbf_last = now;
            self.tbf_tokens =
                (self.tbf_tokens + rate.bytes_per_sec() * elapsed).min(bytes_as_f64(bucket));
            self.tbf_tokens -= bytes_as_f64(bytes);
            let delay = if self.tbf_tokens >= 0.0 {
                Dur::ZERO
            } else {
                Dur::from_secs_f64(-self.tbf_tokens / rate.bytes_per_sec())
            };
            let release = (now + delay).max(self.last_release);
            self.last_release = release;
            return release;
        }
        // First compute the requested delay, then clamp it (split so the
        // clamp bookkeeping doesn't fight the borrow on `self.policy`).
        enum Want {
            Fixed(Dur),
            Clamp(f64, Dur),
        }
        let want = match &mut self.policy {
            Jitter::None => Want::Fixed(Dur::ZERO),
            Jitter::Random { max, rng } => Want::Fixed(Dur::from_secs_f64(
                rng.range_f64(0.0, max.as_secs_f64()),
            )),
            Jitter::Script { schedule, max } => {
                let eta = schedule.value_at(sent_at).unwrap_or(0.0);
                Want::Clamp(eta, *max)
            }
            Jitter::TargetRtt { target_rtt, max } => match target_rtt.value_at(sent_at) {
                None => Want::Fixed(Dur::ZERO),
                Some(d_target) => {
                    // RTT so far (queue + tx + propagation) is now−sent.
                    let so_far = now.since(sent_at).as_secs_f64();
                    Want::Clamp(d_target - so_far, *max)
                }
            },
            Jitter::ExtraExcept {
                extra,
                period,
                offset,
            } => {
                let exempt = if *period == 0 {
                    idx == *offset
                } else {
                    idx % *period == *offset % *period
                };
                Want::Fixed(if exempt { Dur::ZERO } else { *extra })
            }
            Jitter::TokenBucket { .. } => unreachable!("handled above"),
        };
        let delay = match want {
            Want::Fixed(d) => d,
            Want::Clamp(eta, max) => self.clamped(eta, max),
        };
        let release = now + delay;
        let release = release.max(self.last_release);
        self.last_release = release;
        release
    }

    fn clamped(&mut self, eta_secs: f64, max: Dur) -> Dur {
        if eta_secs < -1e-9 {
            self.clamp_violations += 1;
            self.worst_clamp = self.worst_clamp.max(-eta_secs);
            return Dur::ZERO;
        }
        let eta = Dur::from_secs_f64(eta_secs.max(0.0));
        if eta > max {
            self.clamp_violations += 1;
            self.worst_clamp = self.worst_clamp.max(eta_secs - max.as_secs_f64());
            max
        } else {
            eta
        }
    }

    /// How many packets needed clamping (0 for a feasible emulation).
    pub fn clamp_violations(&self) -> u64 {
        self.clamp_violations
    }

    /// Worst clamp magnitude in seconds.
    pub fn worst_clamp(&self) -> f64 {
        self.worst_clamp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_policy_adds_nothing() {
        let mut j = JitterElement::new(Jitter::None);
        let t = Time::from_millis(10);
        assert_eq!(j.release_time(t, Time::ZERO, 1500), t);
    }

    #[test]
    fn random_bounded_and_non_reordering() {
        let mut j = JitterElement::new(Jitter::Random {
            max: Dur::from_millis(20),
            rng: Xoshiro256::new(7),
        });
        let mut prev = Time::ZERO;
        for i in 0..1000 {
            let arrive = Time::from_micros(100 * i);
            let rel = j.release_time(arrive, Time::ZERO, 1500);
            assert!(rel >= arrive);
            assert!(rel.since(arrive) <= Dur::from_millis(21));
            assert!(rel >= prev, "reordered at {i}");
            prev = rel;
        }
    }

    #[test]
    fn script_looks_up_by_send_time() {
        let mut sched = TimeSeries::new();
        sched.push(Time::ZERO, 0.005);
        sched.push(Time::from_millis(100), 0.001);
        let mut j = JitterElement::new(Jitter::Script {
            schedule: sched,
            max: Dur::from_millis(10),
        });
        // Sent at t=0 → 5 ms extra.
        let r = j.release_time(Time::from_millis(50), Time::ZERO, 1500);
        assert_eq!(r, Time::from_millis(55));
        // Sent at t=100ms → 1 ms extra.
        let r = j.release_time(Time::from_millis(150), Time::from_millis(100), 1500);
        assert_eq!(r, Time::from_millis(151));
    }

    #[test]
    fn script_clamps_to_max_and_counts() {
        let mut sched = TimeSeries::new();
        sched.push(Time::ZERO, 0.050);
        let mut j = JitterElement::new(Jitter::Script {
            schedule: sched,
            max: Dur::from_millis(10),
        });
        let r = j.release_time(Time::from_millis(1), Time::ZERO, 1500);
        assert_eq!(r, Time::from_millis(11));
        assert_eq!(j.clamp_violations(), 1);
        assert!((j.worst_clamp() - 0.040).abs() < 1e-9);
    }

    #[test]
    fn target_rtt_fills_the_gap() {
        let mut target = TimeSeries::new();
        target.push(Time::ZERO, 0.080); // want RTT = 80 ms
        let mut j = JitterElement::new(Jitter::TargetRtt {
            target_rtt: target,
            max: Dur::from_millis(40),
        });
        // Packet sent at 0 arrives at the element at 60 ms → hold 20 ms.
        let r = j.release_time(Time::from_millis(60), Time::ZERO, 1500);
        assert_eq!(r, Time::from_millis(80));
        assert_eq!(j.clamp_violations(), 0);
    }

    #[test]
    fn target_rtt_negative_eta_clamps_to_zero() {
        let mut target = TimeSeries::new();
        target.push(Time::ZERO, 0.050);
        let mut j = JitterElement::new(Jitter::TargetRtt {
            target_rtt: target,
            max: Dur::from_millis(40),
        });
        // Already 60 ms old — can't go back in time.
        let r = j.release_time(Time::from_millis(60), Time::ZERO, 1500);
        assert_eq!(r, Time::from_millis(60));
        assert_eq!(j.clamp_violations(), 1);
    }

    #[test]
    fn extra_except_exempts_one_packet() {
        let mut j = JitterElement::new(Jitter::ExtraExcept {
            extra: Dur::from_millis(1),
            period: 0,
            offset: 0,
        });
        // Packet 0 exempt; later packets +1 ms. Use growing arrival times so
        // the no-reorder floor doesn't mask the policy.
        let r0 = j.release_time(Time::from_millis(10), Time::ZERO, 1500);
        assert_eq!(r0, Time::from_millis(10));
        let r1 = j.release_time(Time::from_millis(20), Time::ZERO, 1500);
        assert_eq!(r1, Time::from_millis(21));
        let r2 = j.release_time(Time::from_millis(30), Time::ZERO, 1500);
        assert_eq!(r2, Time::from_millis(31));
    }

    #[test]
    fn extra_except_periodic_exemption() {
        let mut j = JitterElement::new(Jitter::ExtraExcept {
            extra: Dur::from_millis(2),
            period: 3,
            offset: 1,
        });
        let mut rels = Vec::new();
        for i in 0..6u64 {
            let t = Time::from_millis(10 * (i + 1));
            rels.push(j.release_time(t, Time::ZERO, 1500));
        }
        // Indices 1 and 4 exempt.
        assert_eq!(rels[1], Time::from_millis(20));
        assert_eq!(rels[4], Time::from_millis(50));
        assert_eq!(rels[0], Time::from_millis(12));
        assert_eq!(rels[2], Time::from_millis(32));
    }

    #[test]
    fn token_bucket_passes_paced_traffic() {
        // 1.5 MB/s tokens, 3 kB bucket; packets arriving at 1 ms spacing
        // (1.5 MB/s offered) never wait.
        let mut j = JitterElement::new(Jitter::TokenBucket {
            rate: simcore::units::Rate::from_mbps(12.0),
            bucket: 3000,
        });
        for i in 1..20u64 {
            let t = Time::from_millis(i);
            assert_eq!(j.release_time(t, Time::ZERO, 1500), t, "pkt {i}");
        }
    }

    #[test]
    fn token_bucket_delays_bursts() {
        // Same TBF; a 6-packet burst at one instant: the bucket (2 pkts)
        // absorbs the first two, the rest wait for refill at 1 ms/pkt.
        let mut j = JitterElement::new(Jitter::TokenBucket {
            rate: simcore::units::Rate::from_mbps(12.0),
            bucket: 3000,
        });
        let t = Time::from_millis(10);
        let rels: Vec<Time> = (0..6).map(|_| j.release_time(t, Time::ZERO, 1500)).collect();
        assert_eq!(rels[0], t);
        assert_eq!(rels[1], t);
        assert_eq!(rels[2], Time::from_millis(11));
        assert_eq!(rels[3], Time::from_millis(12));
        assert_eq!(rels[5], Time::from_millis(14));
    }

    #[test]
    fn token_bucket_refills_to_cap_only() {
        let mut j = JitterElement::new(Jitter::TokenBucket {
            rate: simcore::units::Rate::from_mbps(12.0),
            bucket: 3000,
        });
        // Long idle: bucket refills to its cap, not beyond — a 4-packet
        // burst still overflows by two.
        let t = Time::from_secs(5);
        let rels: Vec<Time> = (0..4).map(|_| j.release_time(t, Time::ZERO, 1500)).collect();
        assert_eq!(rels[1], t);
        assert!(rels[2] > t);
    }

    #[test]
    fn no_reorder_floor_applies() {
        // A big delay on packet 1 forces packet 2's release to wait.
        let mut sched = TimeSeries::new();
        sched.push(Time::ZERO, 0.030);
        sched.push(Time::from_millis(5), 0.0);
        let mut j = JitterElement::new(Jitter::Script {
            schedule: sched,
            max: Dur::from_millis(40),
        });
        let r1 = j.release_time(Time::from_millis(10), Time::ZERO, 1500); // 40
        let r2 = j.release_time(Time::from_millis(11), Time::from_millis(5), 1500); // would be 11
        assert_eq!(r1, Time::from_millis(40));
        assert_eq!(r2, Time::from_millis(40)); // floored, not reordered
    }
}

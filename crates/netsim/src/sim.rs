//! The network: wiring senders, the shared bottleneck, per-flow propagation
//! and jitter elements, receivers and ACK paths into one deterministic
//! event loop.
//!
//! Topology (the paper's §3 model):
//!
//! ```text
//! sender f ─► [Bernoulli loss] ─► Bottleneck(C, buffer) ─► + Rm(f) ─►
//!   jitter(f) ∈ [0, D] ─► receiver f ─► ACK (policy) ─► sender f
//! ```
//!
//! The whole round-trip propagation `Rm` is applied on the data path and
//! ACKs return instantly; only the sum is observable to an end-to-end CCA,
//! so this loses no generality and lets the adversarial jitter element
//! target full-RTT trajectories directly (as the proofs of Theorems 1–3
//! require).

use crate::config::{FlowConfig, SimConfig, Transport};
use crate::jitter::JitterElement;
use crate::link::{Bottleneck, Enqueue};
use crate::metrics::{FlowRecord, SimResult};
use crate::packet::{Ack, FlowId, Packet};
use crate::receiver::Receiver;
use crate::pktstore::{PktStore, SeqStore};
use crate::sender::{Emit, Sender};
use crate::workload::WorkloadRun;
use simcore::engine::EventQueue;
use simcore::rng::Xoshiro256;
use simcore::trace::{Auditor, Event, FlowAuditSpec, TraceSink};
use simcore::units::{count_as_u64, Dur, Time};

/// Simulator events.
#[derive(Debug)]
enum Ev {
    /// A sender may be able to transmit (flow start, pacing timer, etc.).
    Wake(FlowId),
    /// The bottleneck finishes transmitting its head packet.
    Depart,
    /// A data packet reaches its receiver.
    DataArrive(Packet),
    /// An acknowledgement reaches its sender.
    AckArrive(Ack),
    /// A receiver's delayed-ACK/aggregation timer fires.
    RxFlush(FlowId, Time),
    /// A sender's retransmission timer fires.
    Rto(FlowId, Time),
    /// The workload's next flow arrives (self-rescheduling).
    FlowArrival,
}

/// A runnable network scenario.
/// Generic over the sender's per-sequence packet store: [`PktStore`]
/// (the flat arena, the default every call site gets) or
/// [`RefStore`](crate::pktstore::RefStore) via [`Network::with_store`]
/// (the original B-tree containers, kept as the equivalence oracle).
pub struct Network<S: SeqStore = PktStore> {
    q: EventQueue<Ev>,
    link: Bottleneck,
    senders: Vec<Sender<S>>,
    receivers: Vec<Receiver>,
    jitters: Vec<JitterElement>,
    rm: Vec<Dur>,
    loss: Vec<Option<(f64, Xoshiro256)>>,
    /// Earliest pending Wake per flow (deduplicates pacing timers: without
    /// this, every ACK adds a duplicate wake that reschedules itself
    /// forever and the event population grows without bound).
    wake_armed: Vec<Option<Time>>,
    /// Deadline of the most recently scheduled Rto event per flow
    /// (deduplicates timer events).
    rto_scheduled: Vec<Option<Time>>,
    /// Trace sink (possibly an [`Auditor`] wrapping the configured sink).
    /// `None` — the default — costs one branch per instrumentation point.
    trace: Option<Box<dyn TraceSink>>,
    /// Dynamic arrival schedule, if the scenario carries one.
    workload: Option<WorkloadRun>,
    sample_every: Dur,
    end: Time,
}

impl Network {
    /// Build a network from a scenario description (arena-backed senders).
    pub fn new(cfg: SimConfig) -> Network {
        Network::with_store(cfg)
    }
}

impl<S: SeqStore> Network<S> {
    /// Build a network whose senders use packet store `S`. The default
    /// alias [`Network::new`] resolves `S = PktStore`; the metamorphic
    /// equivalence suite instantiates `Network::<RefStore>` to replay the
    /// same scenarios through the original B-tree bookkeeping.
    pub fn with_store(cfg: SimConfig) -> Network<S> {
        // Build the trace sink first: the audit specs need per-flow MSS and
        // jitter bounds before `cfg.flows` is consumed below. Only the
        // statically-configured flows are registered here; workload flows
        // announce themselves to the auditor via `flow-arrive` events.
        let trace: Option<Box<dyn TraceSink>> = {
            let inner: Option<Box<dyn TraceSink>> = cfg.trace.as_ref().map(|factory| factory());
            if cfg.audit {
                let specs: Vec<FlowAuditSpec> = cfg
                    .flows
                    .iter()
                    .map(|f| FlowAuditSpec {
                        mss: f.mss,
                        jitter_bound: f.audit_jitter_bound.or(f.jitter.bound()),
                    })
                    .collect();
                Some(Box::new(Auditor::new(specs, inner)))
            } else {
                inner
            }
        };
        let mut link = Bottleneck::new(cfg.link.rate, cfg.link.buffer_bytes);
        link.set_ecn_threshold(cfg.link.ecn_threshold);
        let end = Time::ZERO + cfg.duration;
        let mut net = Network {
            q: EventQueue::new(),
            link,
            senders: Vec::new(),
            receivers: Vec::new(),
            jitters: Vec::new(),
            rm: Vec::new(),
            loss: Vec::new(),
            wake_armed: Vec::new(),
            rto_scheduled: Vec::new(),
            trace,
            workload: cfg.workload.map(WorkloadRun::new),
            sample_every: cfg.sample_every,
            end,
        };
        for f in cfg.flows {
            net.add_flow(f, false);
        }
        if let Some(run) = &net.workload {
            let first = run.spec.start;
            if run.spec.count > 0 && first < net.end {
                net.q.schedule_at(first, Ev::FlowArrival);
            }
        }
        net
    }

    /// Wire one flow into the network: endpoints, path elements, and its
    /// start-time wake. `dynamic` flows (workload arrivals) additionally
    /// announce themselves on the trace so the auditor can begin tracking
    /// them mid-run; static flows stay silent, keeping pre-workload trace
    /// digests byte-identical.
    // simlint: cold: runs once per flow arrival, not per packet event
    fn add_flow(&mut self, f: FlowConfig, dynamic: bool) -> FlowId {
        let fid = FlowId::from_index(self.senders.len());
        if dynamic {
            if let Some(tr) = self.trace.as_mut() {
                tr.event(
                    self.q.now(),
                    &Event::FlowArrive {
                        flow: fid,
                        mss: f.mss,
                        jitter_bound: f.audit_jitter_bound.or(f.jitter.bound()),
                        size: f.size,
                    },
                );
            }
        }
        let mut sender =
            Sender::new(fid, f.cca, f.mss, f.app_limit, f.start, self.sample_every);
        sender.set_transport(f.transport);
        sender.set_size(f.size);
        self.senders.push(sender);
        self.receivers.push(match f.transport {
            Transport::Reliable => Receiver::new(fid, f.ack_policy),
            Transport::Datagram => Receiver::new_datagram(fid, f.ack_policy),
        });
        self.jitters.push(JitterElement::new(f.jitter));
        self.rm.push(f.rm);
        self.loss.push(if f.loss_rate > 0.0 {
            Some((f.loss_rate, Xoshiro256::new(f.loss_seed)))
        } else {
            None
        });
        self.wake_armed.push(None);
        self.rto_scheduled.push(None);
        self.q.schedule_at(f.start, Ev::Wake(fid));
        fid
    }

    /// Direct access to a sender (warm starts, inspection).
    pub fn sender_mut(&mut self, flow: FlowId) -> &mut Sender<S> {
        &mut self.senders[flow.index()]
    }

    /// Direct access to the bottleneck (warm starts, inspection).
    pub fn link_mut(&mut self) -> &mut Bottleneck {
        &mut self.link
    }

    /// Flow id used for warm-start filler packets that belong to no sender.
    pub const PHANTOM: FlowId = FlowId::from_raw(u32::MAX);

    /// Pre-fill the bottleneck queue with `bytes` of phantom traffic before
    /// the run starts, creating an initial queueing delay of
    /// `bytes / C` — the proof's freedom to choose `d*(0)` (Theorem 1,
    /// step 3). Phantom packets drain normally but are discarded at the far
    /// side of the link.
    ///
    /// Call before [`Network::run`].
    pub fn prefill_queue(&mut self, bytes: u64, pkt_bytes: u64) {
        if bytes == 0 {
            return;
        }
        let n = bytes.div_ceil(pkt_bytes);
        let pkts: Vec<Packet> = (0..n)
            .map(|i| Packet {
                flow: Self::PHANTOM,
                seq: i,
                bytes: pkt_bytes,
                sent_at: Time::ZERO,
                delivered_at_send: 0,
                app_limited: false,
                retransmit: false,
                ecn: false,
            })
            .collect();
        if let Some(first) = self.link.warm_fill(self.q.now(), pkts) {
            self.q.schedule_at(first, Ev::Depart);
        }
    }

    /// Let a sender transmit everything it can right now; schedule its next
    /// wake if it is pacing-gated.
    // simlint: hot-root: the per-send path, reached once per emitted packet
    fn pump(&mut self, flow: FlowId) {
        let now = self.q.now();
        loop {
            match self.senders[flow.index()].try_emit(now) {
                Emit::Blocked => break,
                Emit::WaitUntil(t) => {
                    let stale = self.wake_armed[flow.index()].is_some_and(|armed| armed <= t);
                    if t > now && t < self.end && !stale {
                        self.wake_armed[flow.index()] = Some(t);
                        self.q.schedule_at(t, Ev::Wake(flow));
                    }
                    break;
                }
                Emit::Pkt(pkt) => {
                    if let Some(tr) = self.trace.as_mut() {
                        tr.event(
                            now,
                            &Event::Send {
                                flow,
                                seq: pkt.seq,
                                bytes: pkt.bytes,
                                retransmit: pkt.retransmit,
                            },
                        );
                    }
                    self.arm_rto(flow);
                    self.inject(pkt);
                }
            }
        }
    }

    /// Push a packet into the path: loss element, then the bottleneck.
    fn inject(&mut self, pkt: Packet) {
        let now = self.q.now();
        if let Some((p, rng)) = &mut self.loss[pkt.flow.index()] {
            if rng.bernoulli(*p) {
                return; // vanished on the path; RTO/dupacks will notice
            }
        }
        let (flow, seq, bytes) = (pkt.flow, pkt.seq, pkt.bytes);
        match self.link.enqueue(now, pkt) {
            Enqueue::Dropped => {
                if let Some(tr) = self.trace.as_mut() {
                    tr.event(now, &Event::Drop { flow, seq, bytes });
                }
            }
            Enqueue::Accepted(first_departure) => {
                if let Some(tr) = self.trace.as_mut() {
                    tr.event(
                        now,
                        &Event::Enqueue {
                            flow,
                            seq,
                            bytes,
                            queued_bytes: self.link.queued_bytes(),
                        },
                    );
                }
                if let Some(t) = first_departure {
                    self.q.schedule_at(t, Ev::Depart);
                }
            }
        }
    }

    fn arm_rto(&mut self, flow: FlowId) {
        if let Some(deadline) = self.senders[flow.index()].rto_deadline() {
            if deadline < self.end && self.rto_scheduled[flow.index()] != Some(deadline) {
                self.rto_scheduled[flow.index()] = Some(deadline);
                self.q.schedule_at(deadline, Ev::Rto(flow, deadline));
            }
        }
    }

    /// Report a just-finished flow's retirement on the trace (take-once:
    /// the sender yields the completion exactly one time).
    fn report_completion(&mut self, flow: FlowId) {
        let now = self.q.now();
        if self.senders[flow.index()].take_completion().is_some() && self.trace.is_some() {
            let acct = self.senders[flow.index()].accounting();
            if let Some(tr) = self.trace.as_mut() {
                tr.event(
                    now,
                    &Event::FlowComplete {
                        flow,
                        sent: acct.sent,
                        delivered: acct.delivered,
                        in_flight: acct.in_flight,
                        lost: acct.lost,
                        unresolved: acct.unresolved,
                        spurious_rtx: acct.spurious_rtx,
                    },
                );
            }
        }
    }

    /// Run to completion and collect results.
    pub fn run(self) -> SimResult {
        self.run_capture().0
    }

    /// Run to completion, returning the results **and** each sender's final
    /// CCA state (cloned). The theorem constructions use the snapshots as
    /// the "converged initial states" of the 2-flow scenario (proof step 3).
    // simlint: hot-root: the event loop — everything it reaches runs per event
    pub fn run_capture(mut self) -> (SimResult, Vec<cca::BoxCca>) {
        // Diagnostic event tally, read once so the per-event bookkeeping is
        // a predictable branch instead of an env lookup (or, previously, an
        // unconditional array write) in the hot loop.
        let evstats = std::env::var_os("NETSIM_EVSTATS").is_some();
        let mut evcount = [0u64; 7];
        let mut events: u64 = 0;
        // Same-time events drain in one slot search and dispatch in
        // insertion order — the exact order the per-event pop loop
        // produced; events a handler schedules at the current instant
        // land in the next batch. The buffer grows once to the largest
        // same-time cohort and is reused for the rest of the run.
        // simlint: allow(hot-path-alloc): single reused batch buffer, amortized across the run
        let mut batch: Vec<Ev> = Vec::new();
        while let Some(now) = self.q.pop_batch_at_or_before(self.end, &mut batch) {
            for ev in batch.drain(..) {
                events += 1;
                if evstats {
                    evcount[match ev {
                        Ev::Wake(_) => 0,
                        Ev::Depart => 1,
                        Ev::DataArrive(_) => 2,
                        Ev::AckArrive(_) => 3,
                        Ev::RxFlush(..) => 4,
                        Ev::Rto(..) => 5,
                        Ev::FlowArrival => 6,
                    }] += 1;
                }
                match ev {
                    Ev::Wake(f) => {
                        if self.wake_armed[f.index()] == Some(now) {
                            self.wake_armed[f.index()] = None;
                        }
                        self.pump(f);
                    }
                    Ev::FlowArrival => {
                        let Some(run) = self.workload.as_mut() else {
                            continue;
                        };
                        if run.spawned >= run.spec.count {
                            continue;
                        }
                        let k = run.spawned;
                        let size = run.draw_size();
                        let fc = run.spec.flow_config(k, now, size);
                        run.spawned += 1;
                        let next = if run.spawned < run.spec.count {
                            Some(now + run.next_interarrival())
                        } else {
                            None
                        };
                        self.add_flow(fc, true);
                        if let Some(t) = next {
                            if t < self.end {
                                self.q.schedule_at(t, Ev::FlowArrival);
                            }
                        }
                    }
                    Ev::Depart => {
                        let (pkt, next) = self.link.depart(now);
                        if let Some(t) = next {
                            self.q.schedule_at(t, Ev::Depart);
                        }
                        let f = pkt.flow;
                        if f == Self::PHANTOM {
                            continue; // warm-start filler: occupies queue only
                        }
                        if let Some(tr) = self.trace.as_mut() {
                            tr.event(
                                now,
                                &Event::Dequeue {
                                    flow: f,
                                    seq: pkt.seq,
                                    bytes: pkt.bytes,
                                    queued_bytes: self.link.queued_bytes(),
                                },
                            );
                        }
                        let at_element = now + self.rm[f.index()];
                        let release =
                            self.jitters[f.index()].release_time(at_element, pkt.sent_at, pkt.bytes);
                        if let Some(tr) = self.trace.as_mut() {
                            tr.event(
                                now,
                                &Event::JitterHold {
                                    flow: f,
                                    seq: pkt.seq,
                                    arrive: at_element,
                                    release,
                                },
                            );
                        }
                        self.q.schedule_at(release, Ev::DataArrive(pkt));
                    }
                    Ev::DataArrive(pkt) => {
                        let f = pkt.flow;
                        if let Some(tr) = self.trace.as_mut() {
                            tr.event(now, &Event::JitterRelease { flow: f, seq: pkt.seq });
                        }
                        let out = self.receivers[f.index()].on_data(now, pkt);
                        if let Some(deadline) = out.arm_flush {
                            self.q.schedule_at(deadline, Ev::RxFlush(f, deadline));
                        }
                        for ack in out.acks {
                            // ACK path is instantaneous (Rm is on the data path).
                            self.q.schedule_at(now, Ev::AckArrive(ack));
                        }
                    }
                    Ev::RxFlush(f, deadline) => {
                        for ack in self.receivers[f.index()].on_flush(deadline) {
                            self.q.schedule_at(now, Ev::AckArrive(ack));
                        }
                    }
                    Ev::AckArrive(ack) => {
                        let f = ack.flow;
                        let rtt_before = self.senders[f.index()].metrics.rtt.len();
                        self.senders[f.index()].process_ack(now, &ack);
                        if self.trace.is_some() {
                            let s = &self.senders[f.index()];
                            // A new point in the RTT series means this ACK
                            // yielded a (Karn-valid) sample.
                            let rtt = if s.metrics.rtt.len() > rtt_before {
                                s.metrics
                                    .rtt
                                    .last()
                                    .map(|(_, secs)| Dur::from_secs_f64(secs))
                            } else {
                                None
                            };
                            let acct = s.accounting();
                            let cwnd = s.cwnd();
                            let pacing = s.cca().pacing_rate();
                            let mut probes: simcore::InlineVec<(&'static str, f64), 4> =
                                simcore::InlineVec::new();
                            s.cca().internals(&mut |k, v| probes.push((k, v)));
                            if let Some(tr) = self.trace.as_mut() {
                                tr.event(
                                    now,
                                    &Event::Ack {
                                        flow: f,
                                        cum_seq: ack.cum_seq,
                                        rtt,
                                        sent: acct.sent,
                                        delivered: acct.delivered,
                                        in_flight: acct.in_flight,
                                        lost: acct.lost,
                                        unresolved: acct.unresolved,
                                        spurious_rtx: acct.spurious_rtx,
                                    },
                                );
                                tr.event(now, &Event::CwndUpdate { flow: f, cwnd, pacing });
                                for (key, value) in probes {
                                    tr.event(now, &Event::Probe { flow: f, key, value });
                                }
                            }
                        }
                        self.report_completion(f);
                        self.arm_rto(f);
                        self.pump(f);
                    }
                    Ev::Rto(f, deadline) => {
                        if self.senders[f.index()].on_rto(now, deadline) {
                            if self.trace.is_some() {
                                let cwnd = self.senders[f.index()].cwnd();
                                let pacing = self.senders[f.index()].cca().pacing_rate();
                                if let Some(tr) = self.trace.as_mut() {
                                    tr.event(now, &Event::Rto { flow: f });
                                    tr.event(now, &Event::CwndUpdate { flow: f, cwnd, pacing });
                                }
                            }
                            // A timeout that writes off a datagram flow's last
                            // outstanding packets can retire the flow.
                            self.report_completion(f);
                            self.arm_rto(f);
                            self.pump(f);
                        }
                    }
                }
            }
        }
        // Diagnostic: set NETSIM_EVSTATS=1 to print per-run event counts
        // (this is how the pacing-timer duplication bug was found).
        if evstats {
            eprintln!(
                "evstats: wake={} depart={} data={} ack={} flush={} rto={} arrive={} heap={}",
                evcount[0], evcount[1], evcount[2], evcount[3], evcount[4], evcount[5],
                evcount[6], self.q.len()
            );
        }
        let end = self.end;
        if self.trace.is_some() {
            let queued = count_as_u64(
                self.link.queued_packets().filter(|p| p.flow != Self::PHANTOM).count(),
            );
            if let Some(tr) = self.trace.as_mut() {
                tr.event(end, &Event::RunEnd { queued_pkts: queued });
                tr.finish(end);
            }
        }
        let utilization = self.link.utilization(end);
        // simlint: allow(hot-path-alloc): end-of-run result assembly, once per run
        let ccas: Vec<cca::BoxCca> = self.senders.iter().map(|s| s.cca_snapshot()).collect();
        let link = self.link;
        let jitters = self.jitters;
        let flows = self
            .senders
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let id = FlowId::from_index(i);
                FlowRecord {
                    id,
                    metrics: s.metrics,
                    drops: link.drops(id),
                    jitter_clamps: jitters[i].clamp_violations(),
                }
            })
            // simlint: allow(hot-path-alloc): end-of-run result assembly, once per run
            .collect();
        let result = SimResult {
            flows,
            utilization,
            end,
            events,
        };
        (result, ccas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AckPolicy, FlowConfig, LinkConfig};
    use crate::jitter::Jitter;
    use cca::ConstCwnd;
    use simcore::units::Rate;

    fn one_flow(cwnd_pkts: u64, rate_mbps: f64, rm_ms: u64, secs: u64) -> SimResult {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(rate_mbps));
        let flow = FlowConfig::bulk(
            Box::new(ConstCwnd::new(cwnd_pkts * 1500)),
            Dur::from_millis(rm_ms),
        );
        Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(secs))).run()
    }

    #[test]
    fn const_cwnd_throughput_is_window_over_rtt() {
        // cwnd = 10 pkts, RTT = 50 ms (no queueing at this rate):
        // throughput = 10*1500*8/0.05 = 2.4 Mbit/s.
        let r = one_flow(10, 100.0, 50, 5);
        let tput = r.flows[0].throughput_at(r.end).mbps();
        assert!((tput - 2.4).abs() < 0.1, "tput={tput}");
    }

    #[test]
    fn rtt_equals_rm_plus_tx_when_unqueued() {
        let r = one_flow(2, 12.0, 50, 2);
        // 1500 B at 12 Mbit/s = 1 ms of transmission + 50 ms Rm.
        let (lo, hi) = r.flows[0]
            .rtt_range_in(Time::from_secs(1), r.end)
            .expect("an unqueued constant window samples RTTs continuously");
        assert!((lo - 0.051).abs() < 1e-6, "lo={lo}");
        assert!((hi - 0.051).abs() < 1e-6, "hi={hi}");
    }

    #[test]
    fn saturating_window_fills_link() {
        // BDP at 12 Mbit/s, 50 ms = 50 pkts; cwnd 100 saturates the link.
        let r = one_flow(100, 12.0, 50, 5);
        let tput = r.flows[0].throughput_at(r.end).mbps();
        assert!(tput > 11.0, "tput={tput}");
        // Standing queue of ~50 packets → RTT ≈ 100 ms.
        let mean = r.flows[0]
            .mean_rtt_in(Time::from_secs(2), r.end)
            .expect("a saturating flow samples RTTs past warmup");
        assert!((mean - 0.100).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn two_flows_share_fifo() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let mk = || {
            FlowConfig::bulk(Box::new(ConstCwnd::new(60 * 1500)), Dur::from_millis(50))
        };
        let r = Network::new(SimConfig::new(link, vec![mk(), mk()], Dur::from_secs(5))).run();
        // Identical windows → equal shares.
        let t0 = r.flows[0].throughput_at(r.end).mbps();
        let t1 = r.flows[1].throughput_at(r.end).mbps();
        assert!((t0 - t1).abs() / t0 < 0.05, "t0={t0} t1={t1}");
        assert!(t0 + t1 > 11.0);
    }

    #[test]
    fn random_loss_detected_and_recovered() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(30 * 1500)), Dur::from_millis(40))
            .with_loss(0.02, 123);
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(10))).run();
        let m = &r.flows[0];
        assert!(m.lost_bytes > 0, "no loss detected");
        // The flow keeps making progress despite the loss.
        assert!(m.throughput_at(r.end).mbps() > 1.0);
        // Declared loss tracks the injected 2% but over-counts when an RTO
        // go-back-N retransmits packets the receiver already has (classic
        // SACK-less TCP behaviour).
        let measured = m.loss_fraction();
        assert!(measured > 0.01 && measured < 0.08, "loss={measured}");
    }

    #[test]
    fn finite_buffer_tail_drops() {
        let link = LinkConfig::new(Rate::from_mbps(6.0), 10 * 1500);
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(100 * 1500)), Dur::from_millis(40));
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(5))).run();
        assert!(r.flows[0].drops > 0, "expected tail drops");
        // A constant window 10× the buffer is pathological — most of every
        // window drops, retransmissions drop too, and RTO backoff stretches
        // recovery exponentially — but the flow must keep making *some*
        // progress, and must rely on timeouts to do it.
        assert!(r.flows[0].total_delivered() >= 20 * 1500);
        assert!(r.flows[0].timeouts > 0);
    }

    #[test]
    fn jitter_increases_observed_rtt() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(2 * 1500)), Dur::from_millis(50))
            .with_jitter(Jitter::Random {
                max: Dur::from_millis(20),
                rng: Xoshiro256::new(5),
            });
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(5))).run();
        let (lo, hi) = r.flows[0]
            .rtt_range_in(Time::from_secs(1), r.end)
            .expect("the jittered flow still delivers and samples RTTs");
        assert!(lo >= 0.051 - 1e-9);
        assert!(hi > 0.060, "hi={hi}");
        assert!(hi < 0.072, "hi={hi}");
    }

    #[test]
    fn quantized_acks_arrive_on_boundaries() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(20 * 1500)), Dur::from_millis(40))
            .with_ack_policy(AckPolicy::Quantized {
                period: Dur::from_millis(60),
            });
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(3))).run();
        // All RTT samples were taken at multiples of 60 ms.
        for &(t, _) in r.flows[0].rtt.points() {
            assert_eq!(t.as_nanos() % Dur::from_millis(60).as_nanos(), 0, "t={t}");
        }
        assert!(r.flows[0].total_delivered() > 0);
    }

    #[test]
    fn delayed_start_respected() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(10 * 1500)), Dur::from_millis(40))
            .with_start(Time::from_secs(2));
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(4))).run();
        let first = r.flows[0].delivered.first().map(|(t, _)| t).unwrap();
        assert!(first >= Time::from_secs(2));
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let run = || {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
            let flow =
                FlowConfig::bulk(Box::new(ConstCwnd::new(30 * 1500)), Dur::from_millis(40))
                    .with_loss(0.01, 9)
                    .with_jitter(Jitter::Random {
                        max: Dur::from_millis(5),
                        rng: Xoshiro256::new(3),
                    });
            let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(3))).run();
            (r.flows[0].total_delivered(), r.flows[0].sent_bytes)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn datagram_transport_survives_heavy_loss() {
        // A datagram flow with a big constant window and 5% loss keeps its
        // goodput near (1 − p)·window-rate: no go-back-N collapse.
        let link = LinkConfig::ample_buffer(Rate::from_mbps(120.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(100 * 1500)), Dur::from_millis(40))
            .with_transport(Transport::Datagram)
            .with_loss(0.05, 77);
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(10))).run();
        let m = &r.flows[0];
        // Window rate = 100 pkts / 40 ms = 30 Mbit/s; goodput ≈ 28.5.
        let tput = m.throughput_at(r.end).mbps();
        assert!(tput > 25.0, "tput={tput}");
        // Measured loss tracks the injected rate.
        let frac = m.loss_fraction();
        assert!((frac - 0.05).abs() < 0.01, "loss={frac}");
        assert_eq!(m.retransmitted_bytes, 0);
    }

    #[test]
    fn audited_lossy_jittery_run_passes_and_traces() {
        // The auditor's six invariants must hold on a stressful scenario:
        // 2% loss (RTO go-back-N, spurious retransmits), 5 ms jitter, a
        // finite buffer (tail drops). A RingSink downstream of the auditor
        // verifies the full event stream reaches the configured sink.
        use simcore::trace::{RingSink, TraceSink};
        use std::sync::Arc;
        let ring = RingSink::new(64);
        let probe = ring.clone();
        let link = LinkConfig::new(Rate::from_mbps(12.0), 30 * 1500);
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(30 * 1500)), Dur::from_millis(40))
            .with_loss(0.02, 123)
            .with_jitter(Jitter::Random {
                max: Dur::from_millis(5),
                rng: Xoshiro256::new(11),
            });
        let cfg = SimConfig::new(link, vec![flow], Dur::from_secs(5))
            .with_trace(Arc::new(move || {
                Box::new(probe.clone()) as Box<dyn TraceSink>
            }))
            .with_audit(true);
        let r = Network::new(cfg).run();
        assert!(r.flows[0].total_delivered() > 0);
        let digest = ring.digest();
        for class in ["send", "enqueue", "dequeue", "jitter-hold", "ack", "cwnd", "run-end"] {
            assert!(digest.count(class) > 0, "no {class} events: {}", digest.render());
        }
    }

    #[test]
    fn tracing_does_not_change_results() {
        // NullSink tracing and auditing must be observationally inert.
        let run = |trace: bool| {
            let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
            let flow =
                FlowConfig::bulk(Box::new(ConstCwnd::new(30 * 1500)), Dur::from_millis(40))
                    .with_loss(0.01, 9)
                    .with_jitter(Jitter::Random {
                        max: Dur::from_millis(5),
                        rng: Xoshiro256::new(3),
                    });
            let mut cfg = SimConfig::new(link, vec![flow], Dur::from_secs(3));
            if trace {
                cfg = cfg
                    .with_trace(std::sync::Arc::new(|| {
                        Box::new(simcore::trace::NullSink) as Box<dyn simcore::trace::TraceSink>
                    }))
                    .with_audit(true);
            }
            let r = Network::new(cfg).run();
            (
                r.flows[0].total_delivered(),
                r.flows[0].sent_bytes,
                r.flows[0].lost_bytes,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn conservation_sent_accounted() {
        let r = one_flow(20, 12.0, 40, 3);
        let m = &r.flows[0];
        // No loss path: delivered + in-flight-ish ≈ sent. Everything sent
        // minus at most a window is delivered.
        assert!(m.sent_bytes >= m.total_delivered());
        assert!(m.sent_bytes - m.total_delivered() <= 21 * 1500);
    }

    #[test]
    fn finite_flow_records_completion_time() {
        let link = LinkConfig::ample_buffer(Rate::from_mbps(12.0));
        let flow = FlowConfig::bulk(Box::new(ConstCwnd::new(10 * 1500)), Dur::from_millis(40))
            .with_size(30 * 1500);
        let r = Network::new(SimConfig::new(link, vec![flow], Dur::from_secs(10))).run();
        let m = &r.flows[0];
        assert_eq!(m.total_delivered(), 30 * 1500);
        let fct = m.fct().expect("a 45 kB flow finishes well inside 10 s");
        // 3 windows of 10 packets at ~41 ms per round trip.
        assert!(fct >= Dur::from_millis(80), "fct={fct}");
        assert!(fct < Dur::from_millis(500), "fct={fct}");
        // Throughput is measured over the flow's lifetime, not the run.
        assert!(m.throughput_at(r.end).mbps() > 1.0);
    }

    #[test]
    fn workload_spawns_flows_on_schedule_and_retires_them() {
        use crate::workload::{ArrivalProcess, SizeDist, Workload};
        let link = LinkConfig::ample_buffer(Rate::from_mbps(48.0));
        let wl = Workload::new(
            3,
            ArrivalProcess::Fixed { interval: Dur::from_millis(200) },
            SizeDist::Fixed { bytes: 20 * 1500 },
            Box::new(ConstCwnd::ten_packets()),
            Dur::from_millis(20),
        )
        .with_start(Time::from_millis(100));
        let cfg = SimConfig::new(link, vec![], Dur::from_secs(5)).with_workload(wl);
        let r = Network::new(cfg).run();
        assert_eq!(r.flows.len(), 3);
        for (i, f) in r.flows.iter().enumerate() {
            let expect_start = Time::from_millis(100 + 200 * count_as_u64(i));
            assert_eq!(f.start, expect_start, "flow {i}");
            assert_eq!(f.total_delivered(), 20 * 1500, "flow {i}");
            assert!(f.fct().is_some(), "flow {i} never completed");
        }
        // All three finished: every FCT is well under the arrival spacing
        // plus a few RTTs.
        assert!(r.fcts().len() == 3);
    }

    #[test]
    fn workload_arrivals_past_the_end_are_dropped() {
        use crate::workload::{ArrivalProcess, SizeDist, Workload};
        let link = LinkConfig::ample_buffer(Rate::from_mbps(48.0));
        let wl = Workload::new(
            100,
            ArrivalProcess::Fixed { interval: Dur::from_millis(300) },
            SizeDist::Fixed { bytes: 1500 },
            Box::new(ConstCwnd::ten_packets()),
            Dur::from_millis(20),
        );
        let cfg = SimConfig::new(link, vec![], Dur::from_secs(1)).with_workload(wl);
        let r = Network::new(cfg).run();
        // Arrivals at 0, 300, 600, 900 ms fit inside the 1 s run.
        assert_eq!(r.flows.len(), 4);
    }

    #[test]
    fn audited_workload_with_loss_and_jitter_passes_and_traces_lifecycle() {
        // Mid-run arrivals and departures under loss and jitter must satisfy
        // every auditor invariant, including the flow-retire byte identity:
        // a retired flow's in-flight bytes all resolve before completion.
        use crate::workload::{ArrivalProcess, SizeDist, Workload};
        use simcore::trace::{RingSink, TraceSink};
        use std::sync::Arc;
        let ring = RingSink::new(64);
        let probe = ring.clone();
        let link = LinkConfig::new(Rate::from_mbps(24.0), 60 * 1500);
        let wl = Workload::new(
            20,
            ArrivalProcess::Poisson { mean: Dur::from_millis(120), seed: 21 },
            SizeDist::Pareto {
                min_bytes: 12_000,
                alpha: 1.3,
                cap_bytes: 150_000,
                seed: 22,
            },
            Box::new(ConstCwnd::ten_packets()),
            Dur::from_millis(30),
        )
        .with_jitter(Dur::from_millis(4), 23)
        .with_loss(0.01, 24);
        let cfg = SimConfig::new(link, vec![], Dur::from_secs(8))
            .with_workload(wl)
            .with_trace(Arc::new(move || Box::new(probe.clone()) as Box<dyn TraceSink>))
            .with_audit(true);
        let r = Network::new(cfg).run();
        assert_eq!(r.flows.len(), 20);
        let digest = ring.digest();
        assert_eq!(digest.count("flow-arrive"), 20);
        let completed = r.fcts().len();
        assert!(completed >= 15, "only {completed}/20 flows completed");
        assert_eq!(digest.count("flow-complete"), count_as_u64(completed));
    }

    #[test]
    fn workload_runs_are_deterministic() {
        use crate::workload::{ArrivalProcess, SizeDist, Workload};
        let run = || {
            let link = LinkConfig::new(Rate::from_mbps(24.0), 60 * 1500);
            let wl = Workload::new(
                12,
                ArrivalProcess::Poisson { mean: Dur::from_millis(100), seed: 5 },
                SizeDist::Pareto {
                    min_bytes: 10_000,
                    alpha: 1.2,
                    cap_bytes: 200_000,
                    seed: 6,
                },
                Box::new(ConstCwnd::ten_packets()),
                Dur::from_millis(25),
            )
            .with_loss(0.02, 7);
            let cfg = SimConfig::new(link, vec![], Dur::from_secs(6)).with_workload(wl);
            let r = Network::new(cfg).run();
            r.flows
                .iter()
                .map(|f| (f.start, f.completed, f.sent_bytes, f.total_delivered()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}

//! # ccmc — a bounded adversarial model checker for congestion control
//!
//! The paper extends CCAC (SIGCOMM 2021) — an SMT-based verifier over a
//! discrete non-deterministic network model — to multiple flows
//! (Appendix C), and uses it to (a) show that two AIMD flows cannot starve
//! over short horizons with a 1-BDP buffer, and (b) find jitter traces that
//! break delay-convergent CCAs.
//!
//! **Substitution note** (see DESIGN.md): no SMT solver is available
//! offline, so the solver is replaced by explicit adversarial search over a
//! discretized choice grid. The network model is the same:
//!
//! * cumulative arrivals `A(t)` and service `S(t)` with
//!   `C·(t − D) ≤ S(t) ≤ C·t` and `S(t) ≤ A(t)` — the adversary may defer
//!   service by up to `D` seconds (that slack *is* the non-congestive
//!   delay bound of the paper's §3 model);
//! * a finite buffer: `A(t) − S(t) ≤ B` (arrivals beyond are dropped);
//! * per-flow split with Appendix C's relaxation: when the queueing delay
//!   is `d_t`, each flow's service satisfies `S_i(t) ≥ A_i(t − d_t)`
//!   (FIFO-ness, relaxed to stay linear).
//!
//! Where CCAC proves properties for *all* traces via Z3, `ccmc` explores
//! the discretized trace space exhaustively (small horizons) or with beam
//! search (longer horizons). It can therefore *find* counterexample traces
//! and *verify absence over the searched grid* — exactly how the paper's
//! claims are phrased for bounded horizons ("no trace of length 10 RTTs").

pub mod model;
pub mod search;

pub use model::{ModelConfig, ModelState, StepChoice};
pub use search::{render_trace, search_max_ratio, search_min_utilization, SearchConfig, SearchOutcome};

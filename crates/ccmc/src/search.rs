//! Adversarial trace search over the discretized model.
//!
//! Exhaustive depth-first search enumerates every choice sequence for
//! short horizons (9^H traces); beam search scales to the 10-RTT horizons
//! the paper's CCAC queries use, keeping the `beam_width` most-promising
//! states per step under the query's objective.

use crate::model::{ModelState, StepChoice};


/// Search parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Use exhaustive DFS when the horizon makes it affordable
    /// (`choices^horizon ≤ exhaustive_limit`), else beam search.
    pub exhaustive_limit: u64,
    /// Beam width for the beam search fallback.
    pub beam_width: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            exhaustive_limit: 600_000,
            beam_width: 64,
        }
    }
}

/// Outcome of a search.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The best objective value found.
    pub best_value: f64,
    /// The adversary trace achieving it.
    pub best_trace: Vec<StepChoice>,
    /// Number of model states expanded.
    pub states_explored: u64,
    /// Whether the search was exhaustive (a bound over the whole grid) or
    /// a beam heuristic (a witness, not a bound).
    pub exhaustive: bool,
}

fn horizon_of(state: &ModelState, horizon_steps: u32) -> u32 {
    horizon_steps.saturating_sub(state.step)
}

/// Generic maximizing search over adversary traces.
fn search<F>(initial: &ModelState, horizon: u32, cfg: SearchConfig, objective: F) -> SearchOutcome
where
    F: Fn(&ModelState) -> f64 + Copy,
{
    let choices = StepChoice::all();
    let steps = horizon_of(initial, horizon);
    let total = (choices.len() as u64).checked_pow(steps).unwrap_or(u64::MAX);
    let mut explored = 0u64;

    if total <= cfg.exhaustive_limit {
        // DFS with an explicit stack of (state, trace).
        let mut best_value = f64::MIN;
        let mut best_trace = Vec::new();
        let mut stack = vec![(initial.clone(), Vec::<StepChoice>::new())];
        while let Some((state, trace)) = stack.pop() {
            explored += 1;
            if state.step >= horizon {
                let v = objective(&state);
                if v > best_value {
                    best_value = v;
                    best_trace = trace;
                }
                continue;
            }
            for &c in &choices {
                let mut next = state.clone();
                next.advance(c);
                let mut t = trace.clone();
                t.push(c);
                stack.push((next, t));
            }
        }
        SearchOutcome {
            best_value,
            best_trace,
            states_explored: explored,
            exhaustive: true,
        }
    } else {
        // Beam search.
        let mut beam = vec![(initial.clone(), Vec::<StepChoice>::new())];
        for _ in 0..steps {
            let mut next_gen = Vec::with_capacity(beam.len() * choices.len());
            for (state, trace) in &beam {
                for &c in &choices {
                    let mut next = state.clone();
                    next.advance(c);
                    explored += 1;
                    let mut t = trace.clone();
                    t.push(c);
                    next_gen.push((next, t));
                }
            }
            next_gen.sort_by(|a, b| {
                objective(&b.0)
                    .partial_cmp(&objective(&a.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            next_gen.truncate(cfg.beam_width);
            beam = next_gen;
        }
        let (best_state, best_trace) = beam
            .into_iter()
            .max_by(|a, b| {
                objective(&a.0)
                    .partial_cmp(&objective(&b.0))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("beam never empty");
        SearchOutcome {
            best_value: objective(&best_state),
            best_trace,
            states_explored: explored,
            exhaustive: false,
        }
    }
}

/// Find the adversary trace maximizing the delivered-bytes ratio between
/// flows (the unfairness/starvation query). With `exhaustive = true` in the
/// outcome, `best_value` is a *bound* over the whole discrete grid — the
/// paper's "no trace of length 10 RTTs where starvation is unbounded"
/// claim for AIMD.
pub fn search_max_ratio(initial: &ModelState, horizon: u32, cfg: SearchConfig) -> SearchOutcome {
    search(initial, horizon, cfg, |s| {
        let r = s.delivered_ratio();
        if r.is_infinite() {
            1e18
        } else {
            r
        }
    })
}

/// Find the adversary trace minimizing link utilization (the
/// under-utilization query of Theorem 2 / the CCAC paper).
pub fn search_min_utilization(
    initial: &ModelState,
    horizon: u32,
    cfg: SearchConfig,
) -> SearchOutcome {
    let out = search(initial, horizon, cfg, |s| -s.utilization());
    SearchOutcome {
        best_value: -out.best_value,
        ..out
    }
}

/// Render an adversary trace as one line per step ("mid/starve0" etc.),
/// for reports and debugging of counterexamples.
pub fn render_trace(trace: &[StepChoice]) -> String {
    trace
        .iter()
        .map(|c| {
            let svc = match c.service_level {
                0 => "defer",
                1 => "mid",
                _ => "full",
            };
            let split = match c.split {
                1 => "starve0",
                2 => "starve1",
                _ => "prop",
            };
            format!("{svc}/{split}")
        })
        .collect::<Vec<_>>()
        .join(" → ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelConfig;
    use cca::{BoxCca, ConstCwnd, NewReno};
    use simcore::units::{Dur, Rate};

    fn model(ccas: Vec<BoxCca>, horizon: u32, d_steps: u32, buffer_pkts: u64) -> ModelState {
        ModelState::new(
            ModelConfig {
                rate: Rate::from_mbps(12.0),
                tau: Dur::from_millis(20),
                d_steps,
                buffer: buffer_pkts * 1500,
                rm: Dur::from_millis(40),
                horizon,
            },
            ccas,
        )
    }

    #[test]
    fn exhaustive_small_horizon() {
        let m = model(
            vec![
                Box::new(ConstCwnd::new(10 * 1500)),
                Box::new(ConstCwnd::new(10 * 1500)),
            ],
            4,
            1,
            60,
        );
        let out = search_max_ratio(&m, 4, SearchConfig::default());
        assert!(out.exhaustive);
        assert_eq!(out.best_trace.len(), 4);
        // 9^4 leaf states plus interior nodes.
        assert!(out.states_explored >= 6561);
        assert!(out.best_value >= 1.0);
    }

    #[test]
    fn beam_engages_for_long_horizons() {
        let m = model(
            vec![
                Box::new(ConstCwnd::new(10 * 1500)),
                Box::new(ConstCwnd::new(10 * 1500)),
            ],
            12,
            1,
            60,
        );
        let out = search_max_ratio(&m, 12, SearchConfig::default());
        assert!(!out.exhaustive);
        assert_eq!(out.best_trace.len(), 12);
    }

    #[test]
    fn adversary_creates_unfairness_between_equal_const_flows() {
        // Even constant-window flows can be served unfairly for a while —
        // the split rule alone biases delivery.
        let m = model(
            vec![
                Box::new(ConstCwnd::new(20 * 1500)),
                Box::new(ConstCwnd::new(20 * 1500)),
            ],
            5,
            2,
            100,
        );
        let out = search_max_ratio(&m, 5, SearchConfig::default());
        assert!(out.best_value > 1.2, "best={}", out.best_value);
    }

    #[test]
    fn newreno_ratio_bounded_over_grid() {
        // The paper's AIMD result (§5.4): over a 10-RTT horizon with a
        // 1-BDP buffer and no random loss, no trace produces unbounded
        // starvation. Horizon here: 10 RTTs = 20 steps of Rm/2 → use beam
        // plus a smaller exhaustive check.
        let m = model(
            vec![
                Box::new(NewReno::default_params()),
                Box::new(NewReno::default_params()),
            ],
            6,
            2,
            40, // 1 BDP at 12 Mbit/s × 40 ms = 40 packets
        );
        let out = search_max_ratio(&m, 6, SearchConfig::default());
        assert!(out.exhaustive);
        assert!(
            out.best_value.is_finite() && out.best_value < 1e6,
            "ratio={}",
            out.best_value
        );
    }

    #[test]
    fn trace_rendering_is_readable() {
        let trace = vec![
            StepChoice { service_level: 0, split: 1 },
            StepChoice { service_level: 2, split: 0 },
        ];
        assert_eq!(render_trace(&trace), "defer/starve0 → full/prop");
    }

    #[test]
    fn replaying_best_trace_reproduces_best_value() {
        // The search outcome's trace, replayed step by step on a fresh
        // model, lands on exactly the reported objective (determinism).
        let m = model(
            vec![
                Box::new(ConstCwnd::new(10 * 1500)),
                Box::new(ConstCwnd::new(10 * 1500)),
            ],
            4,
            1,
            60,
        );
        let out = search_max_ratio(&m, 4, SearchConfig::default());
        let mut replay = m.clone();
        for &c in &out.best_trace {
            replay.advance(c);
        }
        let v = replay.delivered_ratio();
        let expect = if out.best_value >= 1e18 {
            f64::INFINITY
        } else {
            out.best_value
        };
        if expect.is_infinite() {
            assert!(v.is_infinite());
        } else {
            assert!((v - expect).abs() < 1e-9, "v={v} expect={expect}");
        }
    }

    #[test]
    fn arrival_curves_are_monotone() {
        let mut m = model(
            vec![
                Box::new(ConstCwnd::new(10 * 1500)),
                Box::new(ConstCwnd::new(10 * 1500)),
            ],
            8,
            1,
            60,
        );
        while !m.done() {
            m.advance(StepChoice { service_level: 2, split: 0 });
        }
        for i in 0..2 {
            let a = m.arrival_curve(i);
            for w in a.windows(2) {
                assert!(w[1] >= w[0]);
            }
            assert!(m.served(i) <= *a.last().unwrap());
        }
    }

    #[test]
    fn min_utilization_query_runs() {
        let m = model(vec![Box::new(ConstCwnd::new(4 * 1500)) as BoxCca], 5, 2, 60);
        let out = search_min_utilization(&m, 5, SearchConfig::default());
        assert!(out.best_value >= 0.0 && out.best_value <= 1.0);
    }
}

//! The discretized CCAC-style network model, extended to multiple flows
//! (Appendix C of the paper).
//!
//! Time advances in fixed steps of `tau`. Cumulative per-flow arrivals
//! `A_i` and service `S_i` evolve under:
//!
//! * `Σ S_i(t) ≤ C·t` (line rate) and `Σ S_i(t) ≥ C·(t − D)` (the
//!   adversary may defer service by at most `D` — the non-congestive
//!   delay bound);
//! * `S_i(t) ≤ A_i(t)` (no phantom bytes);
//! * `A(t) − S(t) ≤ B` (finite buffer; excess arrivals drop and are
//!   reported to the CCA as loss);
//! * Appendix C's FIFO relaxation: with queueing delay `d_t` (the largest
//!   lag with `A(t − d_t) ≤ S(t)`), each flow must have
//!   `S_i(t) ≥ A_i(t − d_t)`.
//!
//! At each step the adversary makes a [`StepChoice`]: how much total
//! service to deliver (within the `D` slack) and how to split it between
//! flows (within the FIFO relaxation). The CCAs are the *real*
//! implementations from the `cca` crate, driven with synthesized ACK
//! events.

use cca::{AckEvent, BoxCca, LossEvent, LossKind};
use simcore::units::{Dur, Rate, Time};

/// Model parameters.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Link rate `C`.
    pub rate: Rate,
    /// Step length `τ`.
    pub tau: Dur,
    /// Adversary's service-deferral bound `D`, in whole steps.
    pub d_steps: u32,
    /// Buffer size in bytes.
    pub buffer: u64,
    /// Propagation RTT added to every delay observation.
    pub rm: Dur,
    /// Number of steps to run.
    pub horizon: u32,
}

impl ModelConfig {
    /// Bytes the link can serve per step.
    pub fn bytes_per_step(&self) -> u64 {
        (self.rate.bytes_per_sec() * self.tau.as_secs_f64()) as u64
    }
}

/// The adversary's decision at one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepChoice {
    /// Total service level: 0 = the least allowed (defer as much as `D`
    /// permits), `levels-1` = the most allowed (full line rate / backlog).
    pub service_level: u8,
    /// Split rule: 0 = proportional to backlog, 1 = starve flow 0 (give it
    /// only its FIFO-relaxation minimum), 2 = starve flow 1.
    pub split: u8,
}

impl StepChoice {
    /// All `3 × 3 = 9` choices (3 service levels × 3 splits).
    // simlint: cold: offline model checker; shares method names with the simulator's event loop but never runs inside it
    pub fn all() -> Vec<StepChoice> {
        let mut v = Vec::with_capacity(9);
        for service_level in 0..3 {
            for split in 0..3 {
                v.push(StepChoice {
                    service_level,
                    split,
                });
            }
        }
        v
    }
}

/// Per-flow state.
#[derive(Clone)]
struct FlowState {
    cca: BoxCca,
    /// Cumulative arrivals per step (index = step).
    a_hist: Vec<u64>,
    /// Cumulative service.
    s: u64,
    delivered: u64,
    lost: u64,
}

/// The evolving model.
#[derive(Clone)]
pub struct ModelState {
    cfg: ModelConfig,
    flows: Vec<FlowState>,
    /// Current step (number of completed steps).
    pub step: u32,
}

impl ModelState {
    /// Start a model with the given CCAs (one per flow).
    pub fn new(cfg: ModelConfig, ccas: Vec<BoxCca>) -> ModelState {
        let flows = ccas
            .into_iter()
            .map(|cca| FlowState {
                cca,
                a_hist: vec![0],
                s: 0,
                delivered: 0,
                lost: 0,
            })
            .collect();
        ModelState {
            cfg,
            flows,
            step: 0,
        }
    }

    /// Cumulative arrivals of flow `i` at the end of step `t` (clamped).
    fn a_at(&self, i: usize, t: i64) -> u64 {
        if t < 0 {
            return 0;
        }
        let h = &self.flows[i].a_hist;
        let idx = (t as usize).min(h.len() - 1);
        h[idx]
    }

    /// Total cumulative arrivals now.
    fn a_total(&self) -> u64 {
        self.flows.iter().map(|f| *f.a_hist.last().unwrap()).sum()
    }

    /// Total cumulative service now.
    fn s_total(&self) -> u64 {
        self.flows.iter().map(|f| f.s).sum()
    }

    /// Current backlog in bytes.
    pub fn backlog(&self) -> u64 {
        self.a_total() - self.s_total()
    }

    /// Delivered bytes per flow.
    pub fn delivered(&self) -> Vec<u64> {
        self.flows.iter().map(|f| f.delivered).collect()
    }

    /// Cumulative arrivals `A_i(t)` for flow `i` at each completed step —
    /// the appendix's per-flow arrival curve.
    pub fn arrival_curve(&self, i: usize) -> Vec<u64> {
        self.flows[i].a_hist.clone()
    }

    /// Cumulative service `S_i` (current value) for flow `i`.
    pub fn served(&self, i: usize) -> u64 {
        self.flows[i].s
    }

    /// Bytes each flow has lost to the finite buffer so far.
    pub fn lost(&self) -> Vec<u64> {
        self.flows.iter().map(|f| f.lost).collect()
    }

    /// Max/min delivered ratio (∞ if some flow delivered nothing while
    /// another did).
    pub fn delivered_ratio(&self) -> f64 {
        let d = self.delivered();
        let max = *d.iter().max().unwrap_or(&0);
        let min = *d.iter().min().unwrap_or(&0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Link utilization so far.
    pub fn utilization(&self) -> f64 {
        if self.step == 0 {
            return 0.0;
        }
        self.s_total() as f64 / (self.cfg.bytes_per_step() * self.step as u64) as f64
    }

    /// Queueing delay in steps per CCAC's definition: the largest `d` such
    /// that `A(t − d) ≤ S(t)`.
    fn queue_delay_steps(&self) -> u32 {
        let s = self.s_total();
        let t = self.step as i64;
        let mut d = 0i64;
        while d <= t {
            let a_past: u64 = (0..self.flows.len()).map(|i| self.a_at(i, t - d)).sum();
            if a_past <= s {
                return d as u32;
            }
            d += 1;
        }
        t as u32
    }

    /// Advance one step under the adversary's `choice`.
    // simlint: cold: offline model checker; shares method names with the simulator's event loop but never runs inside it
    pub fn advance(&mut self, choice: StepChoice) {
        let cfg = self.cfg;
        let bps = cfg.bytes_per_step();
        let now = Time(self.cfg.tau.as_nanos() * (self.step as u64 + 1));

        // --- 1. Senders transmit ---
        for f in &mut self.flows {
            let a_now = *f.a_hist.last().unwrap();
            let inflight = a_now - f.s;
            let cwnd = f.cca.cwnd();
            let window_room = cwnd.saturating_sub(inflight);
            let pacing_room = match f.cca.pacing_rate() {
                Some(r) => (r.bytes_per_sec() * cfg.tau.as_secs_f64()) as u64,
                None => u64::MAX,
            };
            let want = window_room.min(pacing_room);
            f.a_hist.push(a_now + want);
            if want > 0 {
                f.cca.on_send(now, want, inflight + want);
            }
        }

        // Buffer constraint: drop the excess (split proportionally to each
        // flow's arrivals this step) and tell the CCA.
        let backlog = self.a_total() - self.s_total();
        if backlog > cfg.buffer {
            let mut excess = backlog - cfg.buffer;
            let n = self.flows.len();
            for (idx, f) in self.flows.iter_mut().enumerate() {
                let last = f.a_hist.len() - 1;
                let arrived = f.a_hist[last] - f.a_hist[last - 1];
                let share = if idx + 1 == n {
                    excess
                } else {
                    (excess / (n - idx) as u64).min(arrived)
                };
                let dropped = share.min(arrived);
                f.a_hist[last] -= dropped;
                excess -= dropped;
                if dropped > 0 {
                    f.lost += dropped;
                    let inflight = f.a_hist[last] - f.s;
                    f.cca.on_loss(&LossEvent {
                        now,
                        lost_bytes: dropped,
                        in_flight: inflight,
                        kind: LossKind::FastRetransmit,
                        sent_at: None,
                    });
                }
            }
        }

        self.step += 1;
        let t = self.step;

        // --- 2. Adversary picks total service ---
        let a_tot = self.a_total();
        let s_prev = self.s_total();
        // Upper: line rate and backlog. Lower: C·(t − D) — the deferral
        // slack — and monotonicity.
        let upper = (bps * t as u64).min(a_tot);
        let lower_line = bps * (t.saturating_sub(self.cfg.d_steps)) as u64;
        let lower = lower_line.clamp(s_prev, upper);
        let upper = upper.max(s_prev);
        let s_new = match choice.service_level {
            0 => lower,
            1 => (lower + upper) / 2,
            _ => upper,
        };
        let ds = s_new - s_prev;

        // --- 3. Split among flows (Appendix C relaxation) ---
        let d_t = self.queue_delay_steps();
        let n = self.flows.len();
        let mut lo = vec![0u64; n];
        let mut hi = vec![0u64; n];
        for i in 0..n {
            let past = self.a_at(i, t as i64 - d_t as i64);
            lo[i] = past.max(self.flows[i].s) - self.flows[i].s; // min extra
            hi[i] = self.a_at(i, t as i64) - self.flows[i].s; // max extra
        }
        // Ensure feasibility: Σ lo ≤ ds ≤ Σ hi (clip ds into range).
        let lo_sum: u64 = lo.iter().sum();
        let hi_sum: u64 = hi.iter().sum();
        let ds = ds.clamp(lo_sum, hi_sum.max(lo_sum));
        let mut extra = ds - lo_sum;
        let mut give = lo.clone();
        // Distribute `extra` according to the split rule.
        let order: Vec<usize> = match choice.split {
            1 => (0..n).rev().collect(), // flow 0 last → starved
            2 => (0..n).collect(),       // flow 1 (and later) last
            _ => {
                // Proportional: round-robin by backlog.
                let mut idx: Vec<usize> = (0..n).collect();
                idx.sort_by_key(|&i| std::cmp::Reverse(hi[i] - lo[i]));
                idx
            }
        };
        if choice.split == 0 {
            // Proportional to headroom.
            let head: u64 = (0..n).map(|i| hi[i] - lo[i]).sum();
            if head > 0 {
                for i in 0..n {
                    let share = ((hi[i] - lo[i]) as u128 * extra as u128 / head as u128) as u64;
                    give[i] += share;
                }
                // Remainder to the largest headroom.
                let used: u64 = give.iter().sum::<u64>() - lo_sum;
                let mut rem = extra - used;
                for &i in &order {
                    let room = hi[i] - give[i];
                    let add = room.min(rem);
                    give[i] += add;
                    rem -= add;
                }
            }
        } else {
            for &i in &order {
                let room = hi[i] - give[i];
                let add = room.min(extra);
                give[i] += add;
                extra -= add;
            }
        }

        // --- 4. Deliver ACKs to the CCAs ---
        let rtt = Dur(self.cfg.rm.as_nanos() + self.cfg.tau.as_nanos() * d_t as u64);
        #[allow(clippy::needless_range_loop)] // indexes `give` and `self.flows` together
        for i in 0..n {
            if give[i] == 0 {
                continue;
            }
            let f = &mut self.flows[i];
            let delivered_at_send = f.delivered;
            f.s += give[i];
            f.delivered += give[i];
            let a_now = *f.a_hist.last().unwrap();
            let rate = Rate::from_transfer(give[i], self.cfg.tau);
            f.cca.on_ack(&AckEvent {
                now,
                rtt,
                newly_acked: give[i],
                in_flight: a_now - f.s,
                delivered: f.delivered,
                delivered_at_send,
                delivery_rate: Some(rate),
                app_limited: false,
                ecn: false,
            });
        }
    }

    /// Whether the horizon has been reached.
    pub fn done(&self) -> bool {
        self.step >= self.cfg.horizon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cca::ConstCwnd;

    fn cfg() -> ModelConfig {
        ModelConfig {
            rate: Rate::from_mbps(12.0),
            tau: Dur::from_millis(10),
            d_steps: 2,
            buffer: 60 * 1500,
            rm: Dur::from_millis(40),
            horizon: 20,
        }
    }

    fn two_const(cwnd_pkts: u64) -> ModelState {
        ModelState::new(
            cfg(),
            vec![
                Box::new(ConstCwnd::new(cwnd_pkts * 1500)),
                Box::new(ConstCwnd::new(cwnd_pkts * 1500)),
            ],
        )
    }

    #[test]
    fn bytes_per_step() {
        assert_eq!(cfg().bytes_per_step(), 15_000);
    }

    #[test]
    fn full_service_is_fair_for_equal_flows() {
        let mut m = two_const(5);
        while !m.done() {
            m.advance(StepChoice {
                service_level: 2,
                split: 0,
            });
        }
        let d = m.delivered();
        assert!(d[0] > 0 && d[1] > 0);
        assert!((m.delivered_ratio() - 1.0).abs() < 0.2, "{:?}", d);
    }

    #[test]
    fn deferral_bounded_by_d() {
        // With service_level 0 the adversary defers as much as allowed; the
        // cumulative service can lag line rate by at most D steps.
        let mut m = two_const(50);
        for _ in 0..10 {
            m.advance(StepChoice {
                service_level: 0,
                split: 0,
            });
        }
        let min_required = m.cfg.bytes_per_step() * (10 - m.cfg.d_steps as u64);
        assert!(m.s_total() >= min_required);
    }

    #[test]
    fn starve_split_biases_delivery() {
        let mut m = two_const(20);
        while !m.done() {
            m.advance(StepChoice {
                service_level: 2,
                split: 1, // starve flow 0
            });
        }
        let d = m.delivered();
        assert!(d[1] > d[0], "{:?}", d);
    }

    #[test]
    fn buffer_overflow_drops_and_signals() {
        let small = ModelConfig {
            buffer: 5 * 1500,
            ..cfg()
        };
        let mut m = ModelState::new(
            small,
            vec![Box::new(ConstCwnd::new(100 * 1500)) as BoxCca],
        );
        m.advance(StepChoice {
            service_level: 0,
            split: 0,
        });
        assert!(m.flows[0].lost > 0);
        assert!(m.backlog() <= small.buffer);
    }

    #[test]
    fn utilization_full_when_saturated() {
        let mut m = two_const(100);
        while !m.done() {
            m.advance(StepChoice {
                service_level: 2,
                split: 0,
            });
        }
        assert!(m.utilization() > 0.9, "util={}", m.utilization());
    }

    #[test]
    fn state_is_cloneable_for_search() {
        let m = two_const(5);
        let mut c = m.clone();
        c.advance(StepChoice {
            service_level: 2,
            split: 0,
        });
        assert_eq!(m.step, 0);
        assert_eq!(c.step, 1);
    }
}
